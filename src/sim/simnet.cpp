#include "sim/simnet.hpp"

#include <algorithm>
#include <bit>

#include "common/serde.hpp"

namespace fides::sim {

namespace {

bool contains(const std::vector<std::uint32_t>& ids, NodeId n) {
  return n.kind == NodeId::Kind::kServer &&
         std::find(ids.begin(), ids.end(), n.id) != ids.end();
}

const Envelope& empty_envelope() {
  static const Envelope env{};
  return env;
}

}  // namespace

SimNet::SimNet(SimNetConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

const LinkFaults& SimNet::link_for(NodeId src, NodeId dst) const {
  if (src.kind == NodeId::Kind::kServer && dst.kind == NodeId::Kind::kServer) {
    for (const LinkOverride& o : config_.link_overrides) {
      if (o.src == src.id && o.dst == dst.id) return o.faults;
    }
  }
  return config_.link;
}

double SimNet::draw_delay(const LinkFaults& lf) {
  const double lo = lf.min_delay_us;
  const double hi = std::max(lf.max_delay_us, lo);
  double d = lo + rng_.uniform01() * (hi - lo);
  if (lf.reorder_prob > 0 && rng_.uniform01() < lf.reorder_prob) {
    d += rng_.uniform01() * lf.reorder_extra_us;
  }
  return d;
}

double SimNet::release_time(NodeId src, NodeId dst, double t, bool& was_held) const {
  // Fixpoint: healing one window may land inside another, in any config
  // order — keep bumping until no active window separates src from dst.
  // Terminates because release only ever advances to one of finitely many
  // heal times.
  double release = t;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Partition& p : config_.partitions) {
      if (release >= p.start_us && release < p.heal_us &&
          contains(p.island, src) != contains(p.island, dst)) {
        release = p.heal_us;
        was_held = true;
        changed = true;
      }
    }
  }
  return release;
}

void SimNet::fold_event(const char* tag, double at_us, NodeId src, NodeId dst,
                        const Envelope& env, const crypto::Digest& payload_digest) {
  Writer w;
  w.raw(trace_hash_.view());
  w.str(tag);
  w.u64(std::bit_cast<std::uint64_t>(at_us));
  w.u8(static_cast<std::uint8_t>(src.kind));
  w.u32(src.id);
  w.u8(static_cast<std::uint8_t>(dst.kind));
  w.u32(dst.id);
  w.str(env.type);
  w.raw(payload_digest.view());
  trace_hash_ = crypto::sha256(w.data());
}

void SimNet::fold_node_event(const char* tag, double at_us, NodeId node) {
  fold_event(tag, at_us, node, node, empty_envelope(), crypto::Digest{});
}

void SimNet::schedule(double at_us, NodeId src, NodeId dst, Envelope env,
                      const crypto::Digest& payload_digest, bool duplicate,
                      bool replay) {
  Event ev;
  ev.at_us = at_us;
  ev.seq = next_seq_++;
  ev.src = src;
  ev.dst = dst;
  ev.env = std::move(env);
  ev.payload_digest = payload_digest;
  ev.duplicate = duplicate;
  ev.replay = replay;
  queue_.push(std::move(ev));
}

void SimNet::schedule_control(engine::ControlEvent::Kind kind, NodeId node,
                              double at_us, std::uint64_t tag) {
  Event ev;
  ev.kind = Event::Kind::kControl;
  ev.at_us = at_us;
  ev.seq = next_seq_++;
  ev.ctrl = engine::ControlEvent{kind, node, tag};
  queue_.push(std::move(ev));
}

void SimNet::schedule_crash(NodeId node, double at_us) {
  schedule_control(engine::ControlEvent::Kind::kCrash, node, at_us);
}

void SimNet::schedule_recover(NodeId node, double at_us) {
  schedule_control(engine::ControlEvent::Kind::kRecover, node, at_us);
}

void SimNet::schedule_timeout(NodeId node, double at_us) {
  schedule_control(engine::ControlEvent::Kind::kCoordinatorTimeout, node, at_us);
}

void SimNet::schedule_timer(NodeId node, double at_us, std::uint64_t tag) {
  schedule_control(engine::ControlEvent::Kind::kTimer, node, at_us, tag);
}

void SimNet::crash_now(NodeId node) {
  fold_node_event("CRASH", now_us_, node);
  down_.insert(node);
}

void SimNet::send(NodeId src, NodeId dst, Envelope env) {
  ++stats_.sent;
  const crypto::Digest payload_digest = crypto::sha256(env.payload);
  fold_event("SEND", now_us_, src, dst, env, payload_digest);

  if (src == dst) {
    // Loopback: ideal link, no RNG draws (keeps the random stream — and
    // hence the schedule of real links — independent of self-traffic).
    schedule(now_us_ + config_.self_delay_us, src, dst, std::move(env),
             payload_digest, false, false);
    return;
  }

  const LinkFaults& lf = link_for(src, dst);

  // Loss with retransmission: each dropped copy costs one timeout before
  // the next attempt; the final attempt always goes through, so the round
  // terminates deterministically.
  double t = now_us_;
  for (std::uint32_t attempt = 1; attempt < config_.max_attempts; ++attempt) {
    if (lf.drop_prob <= 0 || rng_.uniform01() >= lf.drop_prob) break;
    ++stats_.dropped;
    fold_event("DROP", t, src, dst, env, payload_digest);
    t += config_.retransmit_timeout_us;
  }

  bool held = false;
  const double delay = draw_delay(lf);
  double deliver_at = release_time(src, dst, t, held) + delay;
  if (held) {
    ++stats_.held;
    fold_event("HOLD", deliver_at, src, dst, env, payload_digest);
  }

  const bool dup = lf.dup_prob > 0 && rng_.uniform01() < lf.dup_prob;
  if (dup) {
    ++stats_.duplicated;
    bool dup_held = false;
    const double dup_at = release_time(src, dst, t, dup_held) + draw_delay(lf);
    if (dup_held) {
      ++stats_.held;
      fold_event("HOLD", dup_at, src, dst, env, payload_digest);
    }
    fold_event("DUP", dup_at, src, dst, env, payload_digest);
    schedule(dup_at, src, dst, env, payload_digest, true, false);
  }
  schedule(deliver_at, src, dst, std::move(env), payload_digest, false, false);
}

void SimNet::send_sequenced(NodeId src, NodeId dst, Envelope env) {
  ++stats_.sent;
  const crypto::Digest payload_digest = crypto::sha256(env.payload);
  fold_event("RESEND", now_us_, src, dst, env, payload_digest);
  // Fixed delay, no fault draws; equal timestamps resolve by scheduling
  // order, so the catch-up stream arrives strictly FIFO.
  schedule(now_us_ + config_.self_delay_us, src, dst, std::move(env), payload_digest,
           false, true);
}

void SimNet::run(const DeliverFn& on_deliver, const ControlFn& on_control) {
  while (!queue_.empty()) {
    // Copy out (priority_queue::top is const): envelopes in round traffic
    // are small relative to the crypto work they trigger.
    Event ev = queue_.top();
    queue_.pop();
    now_us_ = std::max(now_us_, ev.at_us);

    if (ev.kind == Event::Kind::kControl) {
      switch (ev.ctrl.kind) {
        case engine::ControlEvent::Kind::kCrash:
          fold_node_event("CRASH", ev.at_us, ev.ctrl.node);
          down_.insert(ev.ctrl.node);
          break;
        case engine::ControlEvent::Kind::kRecover:
          fold_node_event("RECOVER", ev.at_us, ev.ctrl.node);
          down_.erase(ev.ctrl.node);
          break;
        case engine::ControlEvent::Kind::kCoordinatorTimeout:
          fold_node_event("TIMEOUT", ev.at_us, ev.ctrl.node);
          break;
        case engine::ControlEvent::Kind::kTimer: {
          // The tag folds too: two schedules that fire different timers at
          // the same instant must hash differently.
          Writer w;
          w.raw(trace_hash_.view());
          w.str("TIMER");
          w.u64(std::bit_cast<std::uint64_t>(ev.at_us));
          w.u8(static_cast<std::uint8_t>(ev.ctrl.node.kind));
          w.u32(ev.ctrl.node.id);
          w.u64(ev.ctrl.tag);
          trace_hash_ = crypto::sha256(w.data());
          break;
        }
      }
      if (on_control) on_control(ev.ctrl);
      continue;
    }

    if (down_.count(ev.dst) != 0) {
      // The addressee is dead at delivery time: the copy is gone. The
      // recovery protocol — not the network — re-supplies what was missed.
      ++stats_.lost_down;
      fold_event("LOST", ev.at_us, ev.src, ev.dst, ev.env, ev.payload_digest);
      continue;
    }

    ++stats_.delivered;
    fold_event("DELIVER", ev.at_us, ev.src, ev.dst, ev.env, ev.payload_digest);
    on_deliver(ev.src, ev.dst, ev.env, ev.replay);
  }
}

}  // namespace fides::sim
