// Ablation: Schnorr verification engine (§3.1 crypto hot path).
//
// Isolates the three rungs of the verification fast path on identical
// signatures:
//   single     — the pre-Strauss shape: s·G via the fixed-base table plus a
//                plain double-and-add c·P, then a general add.
//   mul_add    — one interleaved Strauss/wNAF ladder (what verify() runs).
//   batched_N  — schnorr::batch_verify over batches of N: one RLC aggregate
//                MSM amortizing the ladder doublings across the whole batch.
//
// Unlike the Google-Benchmark ablations, this emits a fides-bench-v1 report
// directly (--json <path> / FIDES_BENCH_JSON): wall-clock rates land in the
// info group — tracked in the bench trajectory, never gated.
//
// Knobs: FIDES_ABLATION_REPS (default 40) scales how many verifications each
// mode times.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "crypto/schnorr.hpp"

namespace {

using namespace fides;
using Clock = std::chrono::steady_clock;

struct Signed {
  crypto::PublicKey pk;
  Bytes message;
  crypto::Signature sig;
};

std::vector<Signed> make_corpus(std::size_t n) {
  std::vector<Signed> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const crypto::KeyPair kp = crypto::KeyPair::deterministic(1000 + i);
    Writer w;
    w.str("ablation-verify-msg");
    w.u64(i);
    Bytes msg = std::move(w).take();
    const crypto::Signature sig = kp.sign(msg);
    out.push_back(Signed{kp.public_key(), std::move(msg), sig});
  }
  return out;
}

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t reps = fides::bench::env_size("FIDES_ABLATION_REPS", 40);
  const std::vector<Signed> corpus = make_corpus(64);
  const crypto::Curve& curve = crypto::Curve::instance();

  bench::BenchReport report("ablation_verify");
  bench::stamp_config(report);
  report.config("reps", reps);

  std::printf("Schnorr verification ablation (%zu verifications per mode)\n", reps);
  std::printf("%-14s %-16s %s\n", "mode", "verifies/sec", "us/verify");
  const auto emit = [&](const std::string& label, std::size_t count, double secs) {
    const double rate = secs > 0 ? count / secs : 0.0;
    std::printf("%-14s %-16.0f %.1f\n", label.c_str(), rate, 1e6 * secs / count);
    bench::BenchPoint& p = report.point(label);
    p.info.set("verifies_per_sec", rate);
    p.info.set("us_per_verify", 1e6 * secs / count);
  };

  // single: the two independent scalar multiplications verify() used before
  // the joint ladder — kept here as the ablation baseline.
  {
    std::size_t good = 0;
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < reps; ++i) {
      const Signed& s = corpus[i % corpus.size()];
      // c = H(ser(R) || ser(P) || m) mod n, inline as verify() computes it.
      crypto::Sha256 h;
      h.update(s.sig.r.serialize());
      h.update(s.pk.serialize());
      h.update(s.message);
      const crypto::U256 c = crypto::scalar_from_digest(h.finalize());
      const crypto::Point lhs = curve.mul_g(s.sig.s);
      const crypto::Point rhs = curve.add(
          curve.from_affine(s.sig.r), curve.mul(c, curve.from_affine(s.pk.point)));
      good += curve.equal(lhs, rhs) ? 1 : 0;
    }
    const double secs = seconds_since(t0);
    if (good != reps) {
      std::printf("ERROR: single-mode verification failed (%zu/%zu)\n", good, reps);
      return 1;
    }
    emit("single", reps, secs);
  }

  // mul_add: the shipped verify() — one Strauss/wNAF ladder per signature.
  {
    std::size_t good = 0;
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < reps; ++i) {
      const Signed& s = corpus[i % corpus.size()];
      good += crypto::verify(s.pk, s.message, s.sig) ? 1 : 0;
    }
    const double secs = seconds_since(t0);
    if (good != reps) {
      std::printf("ERROR: mul_add-mode verification failed (%zu/%zu)\n", good, reps);
      return 1;
    }
    emit("mul_add", reps, secs);
  }

  // batched_N: RLC aggregate over batches of N — one MSM per batch.
  for (const std::size_t batch : {16UL, 64UL}) {
    std::vector<crypto::BatchItem> items;
    items.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      const Signed& s = corpus[i % corpus.size()];
      items.push_back(crypto::BatchItem{
          &s.pk, BytesView(s.message.data(), s.message.size()), &s.sig});
    }
    const std::size_t iters = std::max<std::size_t>(1, reps / batch);
    std::size_t good = 0;
    const auto t0 = Clock::now();
    for (std::size_t it = 0; it < iters; ++it) {
      const auto verdicts = crypto::batch_verify(items);
      for (const unsigned char v : verdicts) good += v;
    }
    const double secs = seconds_since(t0);
    if (good != iters * batch) {
      std::printf("ERROR: batched_%zu verification failed (%zu/%zu)\n", batch, good,
                  iters * batch);
      return 1;
    }
    emit("batched_" + std::to_string(batch), iters * batch, secs);
  }

  bench::finish_report(report, argc, argv);
  return 0;
}
