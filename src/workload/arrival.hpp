// Open-loop arrival processes (production-shaped load).
//
// The closed-loop driver feeds the engine as fast as rounds complete — the
// paper's §6 measurement loop, which measures protocol capacity but can
// never observe queueing delay. An *open-loop* run decouples offered load
// from service rate: transactions arrive on the SimNet virtual clock at
// times drawn from a configured process, queue at the coordinator until a
// block fills, and each transaction's latency is the virtual time from its
// client's submit to the client receiving the commit response — which is
// where p99/p999 tails come from.
//
// Arrival times are a pure function of (process, rate, count, seed), so an
// open-loop schedule reproduces exactly like every other SimNet schedule.
#pragma once

#include <cstdint>
#include <vector>

namespace fides::workload {

enum class ArrivalProcess : std::uint8_t {
  kClosed,     ///< no arrival model: the classic closed-loop window driver
  kFixedRate,  ///< deterministic arrivals every 1/rate seconds
  kPoisson,    ///< exponential inter-arrival gaps with mean 1/rate
};

struct ArrivalConfig {
  ArrivalProcess process{ArrivalProcess::kClosed};
  /// Offered load in transactions per second of virtual time.
  double rate_tps{2000.0};
  /// Client population submitting the stream (round-robin assignment). Each
  /// client is a SimNet node with session affinity to one server.
  std::uint32_t num_clients{4};
  /// Seed for the Poisson gap draws (independent of the network seed, so
  /// the same traffic pattern can replay over different schedules).
  std::uint64_t seed{7};
};

/// Submit times in virtual microseconds for `n` transactions, strictly
/// increasing, starting after time 0.
std::vector<double> arrival_times_us(const ArrivalConfig& config, std::size_t n);

}  // namespace fides::workload
