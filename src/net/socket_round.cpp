#include "net/socket_round.hpp"

namespace fides::net {

SocketRunResult run_commit_rounds_over_sockets(
    Cluster& cluster, Protocol protocol,
    std::vector<std::vector<commit::SignedEndTxn>> batches, const SocketOptions& opts) {
  SocketRunResult result;
  if (batches.empty()) return result;
  SocketScheduler sched(cluster, opts);
  result.pipeline = engine::run_commit_rounds(cluster, protocol, std::move(batches), sched);
  result.digests = sched.finish();
  return result;
}

}  // namespace fides::net
