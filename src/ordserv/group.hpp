// Dynamic server groups (§4.6, second scaling dimension).
//
// "The servers accessed by a transaction form one group, in which one server
// acts as the coordinator to terminate that transaction (instead of one
// globally designated coordinator)."
#pragma once

#include <vector>

#include "ledger/block.hpp"

namespace fides::ordserv {

struct ServerGroup {
  std::vector<ServerId> members;  ///< sorted, unique
  ServerId coordinator;           ///< lowest-id member by convention

  bool contains(ServerId s) const;

  /// Gi ∩ Gj != ∅ — groups with overlap may carry dependent transactions and
  /// their blocks must keep submission order (§4.6).
  bool overlaps(const ServerGroup& other) const;
};

/// The group a batch of transactions needs: every server owning an item the
/// batch touches.
ServerGroup group_for(const std::vector<txn::Transaction>& txns,
                      std::uint32_t num_servers);

}  // namespace fides::ordserv
