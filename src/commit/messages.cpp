#include "commit/messages.hpp"

namespace fides::commit {

namespace {

void encode_point(Writer& w, const crypto::AffinePoint& p) { w.bytes(p.serialize()); }

crypto::AffinePoint decode_point(Reader& r) {
  const Bytes b = r.bytes();
  const auto p = crypto::AffinePoint::deserialize(b);
  if (!p) throw DecodeError("invalid curve point");
  return *p;
}

void encode_u256(Writer& w, const crypto::U256& v) {
  const auto b = v.to_bytes_be();
  w.raw(BytesView(b.data(), b.size()));
}

crypto::U256 decode_u256(Reader& r) { return crypto::U256::from_bytes_be(r.raw(32)); }

void encode_digest(Writer& w, const crypto::Digest& d) { w.raw(d.view()); }

crypto::Digest decode_digest(Reader& r) {
  const Bytes raw = r.raw(32);
  crypto::Digest d;
  std::copy(raw.begin(), raw.end(), d.bytes.begin());
  return d;
}

void encode_signature(Writer& w, const crypto::Signature& s) { w.bytes(s.serialize()); }

crypto::Signature decode_signature(Reader& r) {
  const Bytes b = r.bytes();
  const auto s = crypto::Signature::deserialize(b);
  if (!s) throw DecodeError("invalid signature");
  return *s;
}

void encode_block(Writer& w, const Block& b) { w.bytes(b.serialize()); }

Block decode_block(Reader& r) {
  const Bytes raw = r.bytes();
  const auto b = Block::deserialize(raw);
  if (!b) throw DecodeError("invalid block");
  return *b;
}

/// Shared try/catch wrapper: decode via `fn`, nullopt on malformed bytes.
template <typename T, typename Fn>
std::optional<T> safe_decode(BytesView bytes, Fn&& fn) {
  try {
    Reader r(bytes);
    T msg = fn(r);
    r.expect_done();
    return msg;
  } catch (const DecodeError&) {
    return std::nullopt;
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

}  // namespace

void encode_signed_end_txn(Writer& w, const SignedEndTxn& s) {
  w.u32(s.client.value);
  w.bytes(s.request.serialize());
  encode_signature(w, s.signature);
}

SignedEndTxn decode_signed_end_txn(Reader& r) {
  SignedEndTxn s;
  s.client = ClientId{r.u32()};
  const Bytes req = r.bytes();
  const auto parsed = EndTxnRequest::deserialize(req);
  if (!parsed) throw DecodeError("invalid end-txn request");
  s.request = *parsed;
  s.signature = decode_signature(r);
  return s;
}

Bytes GetVoteMsg::serialize() const {
  Writer w;
  encode_block(w, partial_block);
  w.u32(static_cast<std::uint32_t>(requests.size()));
  for (const auto& req : requests) encode_signed_end_txn(w, req);
  w.u64(round);
  w.boolean(spec);
  return std::move(w).take();
}

std::optional<GetVoteMsg> GetVoteMsg::deserialize(BytesView b) {
  return safe_decode<GetVoteMsg>(b, [](Reader& r) {
    GetVoteMsg m;
    m.partial_block = decode_block(r);
    const std::uint32_t n = r.u32();
    m.requests.reserve(std::min<std::uint32_t>(n, 4096));
    for (std::uint32_t i = 0; i < n; ++i) m.requests.push_back(decode_signed_end_txn(r));
    m.round = r.u64();
    m.spec = r.boolean();
    return m;
  });
}

std::uint64_t VoteMsg::base_key() const {
  if (spec_assumed.empty()) return 0;
  Writer w;
  for (const SpecAssumption& a : spec_assumed) {
    w.u64(a.epoch);
    w.boolean(a.applied);
  }
  w.boolean(spec_base_root.has_value());
  if (spec_base_root) encode_digest(w, *spec_base_root);
  const crypto::Digest d = crypto::sha256(w.data());
  std::uint64_t key = 0;
  for (std::size_t i = 0; i < 8; ++i) key = (key << 8) | d.bytes[i];
  return key != 0 ? key : 1;  // 0 is reserved for the empty tag
}

Bytes VoteMsg::serialize() const {
  Writer w;
  w.u32(cohort.value);
  encode_point(w, sch_commitment);
  w.boolean(involved);
  w.u8(static_cast<std::uint8_t>(vote));
  w.str(abort_reason);
  w.boolean(root.has_value());
  if (root) encode_digest(w, *root);
  w.u32(static_cast<std::uint32_t>(spec_assumed.size()));
  for (const SpecAssumption& a : spec_assumed) {
    w.u64(a.epoch);
    w.boolean(a.applied);
  }
  w.boolean(spec_base_root.has_value());
  if (spec_base_root) encode_digest(w, *spec_base_root);
  return std::move(w).take();
}

std::optional<VoteMsg> VoteMsg::deserialize(BytesView b) {
  return safe_decode<VoteMsg>(b, [](Reader& r) {
    VoteMsg m;
    m.cohort = ServerId{r.u32()};
    m.sch_commitment = decode_point(r);
    m.involved = r.boolean();
    const std::uint8_t v = r.u8();
    if (v > 1) throw DecodeError("invalid vote");
    m.vote = static_cast<txn::Vote>(v);
    m.abort_reason = r.str();
    if (r.boolean()) m.root = decode_digest(r);
    const std::uint32_t na = r.u32();
    // A forged count must not pre-allocate gigabytes before the truncated
    // read fails; real tags are bounded by the pipeline window.
    m.spec_assumed.reserve(std::min<std::uint32_t>(na, 64));
    for (std::uint32_t i = 0; i < na; ++i) {
      SpecAssumption a;
      a.epoch = r.u64();
      a.applied = r.boolean();
      m.spec_assumed.push_back(a);
    }
    if (r.boolean()) m.spec_base_root = decode_digest(r);
    return m;
  });
}

Bytes ChallengeMsg::serialize() const {
  Writer w;
  encode_u256(w, challenge);
  encode_point(w, aggregate_commitment);
  encode_block(w, block);
  return std::move(w).take();
}

std::optional<ChallengeMsg> ChallengeMsg::deserialize(BytesView b) {
  return safe_decode<ChallengeMsg>(b, [](Reader& r) {
    ChallengeMsg m;
    m.challenge = decode_u256(r);
    m.aggregate_commitment = decode_point(r);
    m.block = decode_block(r);
    return m;
  });
}

Bytes ResponseMsg::serialize() const {
  Writer w;
  w.u32(cohort.value);
  w.boolean(refused);
  w.str(refusal_reason);
  encode_u256(w, sch_response);
  return std::move(w).take();
}

std::optional<ResponseMsg> ResponseMsg::deserialize(BytesView b) {
  return safe_decode<ResponseMsg>(b, [](Reader& r) {
    ResponseMsg m;
    m.cohort = ServerId{r.u32()};
    m.refused = r.boolean();
    m.refusal_reason = r.str();
    m.sch_response = decode_u256(r);
    return m;
  });
}

Bytes DecisionMsg::serialize() const {
  Writer w;
  encode_block(w, final_block);
  return std::move(w).take();
}

std::optional<DecisionMsg> DecisionMsg::deserialize(BytesView b) {
  return safe_decode<DecisionMsg>(b, [](Reader& r) {
    DecisionMsg m;
    m.final_block = decode_block(r);
    return m;
  });
}

Bytes PrepareMsg::serialize() const {
  Writer w;
  encode_block(w, partial_block);
  w.u32(static_cast<std::uint32_t>(requests.size()));
  for (const auto& req : requests) encode_signed_end_txn(w, req);
  return std::move(w).take();
}

std::optional<PrepareMsg> PrepareMsg::deserialize(BytesView b) {
  return safe_decode<PrepareMsg>(b, [](Reader& r) {
    PrepareMsg m;
    m.partial_block = decode_block(r);
    const std::uint32_t n = r.u32();
    m.requests.reserve(std::min<std::uint32_t>(n, 4096));
    for (std::uint32_t i = 0; i < n; ++i) m.requests.push_back(decode_signed_end_txn(r));
    return m;
  });
}

Bytes PrepareVoteMsg::serialize() const {
  Writer w;
  w.u32(cohort.value);
  w.boolean(involved);
  w.u8(static_cast<std::uint8_t>(vote));
  w.str(abort_reason);
  return std::move(w).take();
}

std::optional<PrepareVoteMsg> PrepareVoteMsg::deserialize(BytesView b) {
  return safe_decode<PrepareVoteMsg>(b, [](Reader& r) {
    PrepareVoteMsg m;
    m.cohort = ServerId{r.u32()};
    m.involved = r.boolean();
    const std::uint8_t v = r.u8();
    if (v > 1) throw DecodeError("invalid vote");
    m.vote = static_cast<txn::Vote>(v);
    m.abort_reason = r.str();
    return m;
  });
}

Bytes CommitDecisionMsg::serialize() const {
  Writer w;
  encode_block(w, final_block);
  return std::move(w).take();
}

std::optional<CommitDecisionMsg> CommitDecisionMsg::deserialize(BytesView b) {
  return safe_decode<CommitDecisionMsg>(b, [](Reader& r) {
    CommitDecisionMsg m;
    m.final_block = decode_block(r);
    return m;
  });
}

}  // namespace fides::commit
