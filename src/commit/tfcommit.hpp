// TFCommit — TrustFree Commitment (§4.3).
//
// A 3-round, 5-phase protocol merging Two-Phase Commit with Collective
// Signing:
//
//   1 <GetVote,  SchAnnouncement>  coordinator sends the partial block
//   2 <Vote,     SchCommitment>    cohorts vote + Schnorr commitments
//   3 <null,     SchChallenge>     coordinator fills decision/Σroots,
//                                  broadcasts challenge over the block
//   4 <null,     SchResponse>      cohorts validate the block and respond
//   5 <Decision, null>             coordinator aggregates the co-sign and
//                                  broadcasts the finalized block
//
// The classes here are pure protocol state machines: they consume messages
// and produce messages/outcomes, with no I/O. The fides::Cluster drives them
// over the signed transport. Fault knobs let a Byzantine node deviate at
// every step the paper analyses (Lemmas 4 and 5, Scenario 2).
#pragma once

#include <map>
#include <span>

#include "commit/messages.hpp"
#include "store/shard.hpp"

namespace fides::commit {

/// Byzantine deviations of a cohort during TFCommit.
struct CohortFaults {
  bool corrupt_sch_commitment{false};  ///< garbage x_sch (Lemma 4)
  bool corrupt_sch_response{false};    ///< garbage r_i (Lemma 4)
  bool always_vote_abort{false};       ///< grief by vetoing every block
  bool skip_root_check{false};         ///< collude: don't expose a fake root
  bool skip_challenge_check{false};    ///< collude: don't verify the challenge
};

/// Byzantine deviations of the coordinator.
struct CoordinatorFaults {
  /// Lemma 5: send commit-blocks to one subset of cohorts and abort-blocks
  /// to the rest. `kSameChallenge` reuses one challenge for both blocks
  /// (Case 1); `kMatchingChallenges` computes a consistent challenge per
  /// block (Case 2). Either way the final co-sign cannot verify.
  enum class Equivocation : std::uint8_t { kNone, kSameChallenge, kMatchingChallenges };
  Equivocation equivocate{Equivocation::kNone};
  /// Cohorts (by index in the cohort list) that receive the abort variant.
  std::vector<std::size_t> equivocation_victims;

  /// Scenario 2: replace this server's Σroots entry with a fake digest.
  std::optional<ServerId> fake_root_victim;

  /// Ignore abort votes and declare commit anyway (atomicity attack; fails
  /// because vetoing cohorts' roots are missing and they refuse to co-sign).
  bool force_commit{false};

  /// Emit a per-cohort challenge fan-out with the last message missing (a
  /// broken coordinator truncating its send loop). The resulting vector size
  /// matches neither the broadcast shape (1) nor the cohort count — drivers
  /// must refuse the round instead of indexing into the vector by cohort.
  bool drop_last_challenge{false};
};

/// Cohort-side state machine. One instance per server; handle_get_vote
/// opens a round, keyed by the CoSi round id from the GetVoteMsg — the
/// engine and OrdServ group commit both hand out *epochs* here (unique even
/// when aborted rounds reuse block heights; heights appear only in direct
/// unit-test drivers) — so stale redeliveries and pipelined rounds each
/// find their own state. Works against the server's shard (validation,
/// hypothetical roots) and keypair (CoSi). All round state is volatile: a
/// crashed server rebuilds it by reprocessing the (retransmitted) get_vote
/// — deterministic nonces make the rebuilt commitments bit-identical to the
/// lost ones.
///
/// Speculative voting (GetVoteMsg::spec): a speculative opening arrives
/// while earlier rounds this cohort has voted on are still deciding. The
/// cohort predicts each in-flight block's fate from its own vote (it never
/// vetoed a block it voted commit on; another cohort still might), stacks
/// the predicted-applied update sets into a store::ShardOverlay + chained
/// Merkle overlay, and votes against that base — tagging the vote with the
/// exact assumptions so the coordinator can validate them against the real
/// decisions. resolve_decision() is the truth feed: when an assumption
/// proves wrong, the affected later votes are recomputed on the corrected
/// base and re-sent as *new* logical votes (new (epoch, base) log records).
class TfCommitCohort {
 public:
  TfCommitCohort(ServerId id, const crypto::KeyPair& keypair, store::Shard& shard)
      : id_(id), keypair_(&keypair), shard_(&shard) {}

  /// Phase 2. Validates the client requests (signatures verified by the
  /// caller/transport layer against the client registry), runs OCC
  /// validation for transactions touching this shard, computes the
  /// hypothetical Merkle root, and produces the vote.
  VoteMsg handle_get_vote(const GetVoteMsg& msg, const CohortFaults& faults = {});

  /// Phase 4. Verifies the completed block against what this cohort voted
  /// (root echo, decision/roots consistency, challenge correctness) and
  /// responds or refuses.
  ResponseMsg handle_challenge(const ChallengeMsg& msg, const CohortFaults& faults = {});

  /// Engine variant: the challenge of engine round `round` (the dispatcher
  /// knows the epoch from the wire frame). Required for speculative rounds,
  /// whose stored partial carries a projected height and no prev-hash — the
  /// completed block's chain position cannot identify them by content.
  ResponseMsg handle_challenge(std::uint64_t round, const ChallengeMsg& msg,
                               const CohortFaults& faults = {});

  /// A recomputed vote for a round whose speculated base proved wrong.
  struct ReVote {
    std::uint64_t round{0};
    VoteMsg vote;
  };

  /// Truth feed for speculation: round `round` decided, and `applied` says
  /// whether its block changed this shard (committed with a valid co-sign).
  /// Pops the round off the pending stack and recomputes the vote of every
  /// later in-flight round whose last vote assumed the opposite — those
  /// come back as ReVotes the caller must log (vote-once per (epoch, base))
  /// and re-send. No-op for gated (non-speculative) rounds.
  std::vector<ReVote> resolve_decision(std::uint64_t round, bool applied);

  /// Whether this cohort's shard is touched by any transaction in `block`.
  bool involved_in(const Block& block) const;

  /// Whether state exists for `round` *and* matches this partial block —
  /// i.e. the opening is a redelivery, not a fresh round that happens to
  /// reuse a round id (aborted rounds reuse heights; OrdServ epochs do
  /// not). Absent after a crash until the opening is reprocessed.
  bool has_pending(std::uint64_t round, const Block& partial) const;

  /// Whether this cohort can answer a challenge for `block` (see
  /// find_round).
  bool has_state_for(const Block& block) const { return find_round(block) != nullptr; }

  /// The partial block this cohort received for `round`, or nullptr. A
  /// termination backup rebuilds the round from its own copy.
  const Block* partial_of(std::uint64_t round) const;

  // --- Cooperative termination (coordinator crash) ---------------------------
  //
  // When the coordinator dies mid-round, the surviving cohorts finish the
  // round themselves with a *fresh* CoSi exchange (a distinct nonce round —
  // reusing the original commitment under a second challenge would leak the
  // key). The decision is the conservative abort: no commit decision can
  // exist, because a TFCommit decision needs every signer's response.

  /// This cohort's termination commitment for `round`, or nullopt if it
  /// never saw the round's opening.
  std::optional<crypto::AffinePoint> term_commitment(std::uint64_t round) const;

  /// Verifies and co-signs a termination (abort) block for `round`. Refuses
  /// a non-abort decision, an unknown round, a block whose contents differ
  /// from the opening this cohort saw, or a challenge that does not match
  /// the block — a Byzantine backup cannot smuggle a commit (or different
  /// transactions) through the termination path.
  ResponseMsg handle_term_challenge(std::uint64_t round, const ChallengeMsg& msg);

  /// The vote this cohort cast in the most recent round (tests/telemetry).
  txn::Vote last_vote() const { return last_vote_; }

  /// Wall time the last handle_get_vote spent computing the hypothetical
  /// Merkle root — the dominant cost §6.3 plots as "MHT update time".
  double last_root_compute_us() const { return last_root_compute_us_; }

 private:
  struct RoundState {
    crypto::CosiCommitment commitment;
    std::optional<crypto::Digest> sent_root;
    txn::Vote vote{txn::Vote::kAbort};
    bool involved{false};
    Block partial;  ///< as received; the termination backup's block source
    /// Speculative round: partial.height is projected, prev_hash unknowable.
    bool spec{false};
    /// Faults in force when the opening was processed (re-votes must deviate
    /// — or not — exactly like the original vote did).
    CohortFaults faults;
    /// Base tag of the last vote computed for this round.
    std::vector<SpecAssumption> assumed;
    std::optional<crypto::Digest> base_root;
    /// Nonce protection: at most one distinct challenge is ever answered per
    /// round (deterministic restarts re-ask the identical challenge).
    bool responded{false};
    crypto::U256 responded_challenge;
  };

  /// Nonce round id of the termination CoSi exchange for `round`.
  static std::uint64_t term_round(std::uint64_t round) {
    return round | (1ULL << 63);
  }

  void store_round(std::uint64_t round, RoundState state);
  /// Round state for a completed/challenge block. The ChallengeMsg carries
  /// no round id, so the lookup matches on block content (height, prev
  /// hash, signers, txns — everything the coordinator does not fill in);
  /// the height probe is just a cheap first guess before the scan over the
  /// at-most-kMaxRounds live entries, and only the content match decides.
  RoundState* find_round(const Block& block);
  const RoundState* find_round(const Block& block) const;

  /// OCC + hypothetical root over the (possibly speculated) base, shared by
  /// the first vote and every re-vote of a round. Reads the pending stack
  /// strictly below `round` and records the assumption tag into `state`.
  VoteMsg compute_vote(std::uint64_t round, RoundState& state);

  /// The §4.3.1 phase-4 verification against one round's stored state.
  ResponseMsg respond_to_challenge(RoundState& state, const ChallengeMsg& msg,
                                   const CohortFaults& faults);

  ServerId id_;
  const crypto::KeyPair* keypair_;
  store::Shard* shard_;

  std::map<std::uint64_t, RoundState> rounds_;  ///< bounded (see kMaxRounds)
  /// Speculative rounds opened but not yet resolved, in round order — the
  /// overlay stack later speculative votes build on.
  std::vector<std::uint64_t> pending_;
  txn::Vote last_vote_{txn::Vote::kAbort};
  double last_root_compute_us_{0};

  static constexpr std::size_t kMaxRounds = 16;  ///< >= max pipeline depth + slack
};

/// Result of a full TFCommit round at the coordinator.
struct TfCommitOutcome {
  Block block;               ///< finalized block (cosign set if signable)
  Decision decision{Decision::kAbort};
  bool cosign_valid{false};  ///< aggregate signature verified OK
  /// Servers whose CoSi share failed verification (Lemma 4 attribution).
  std::vector<ServerId> faulty_cosigners;
  /// Cohorts that refused to co-sign, with their reasons.
  std::vector<std::pair<ServerId, std::string>> refusals;
};

/// Coordinator-side state machine for one block.
class TfCommitCoordinator {
 public:
  /// `cohorts` lists every server participating in termination (§4.1: all
  /// servers, including the coordinator itself, co-sign every block).
  /// `keys[i]` is cohorts[i]'s public key.
  TfCommitCoordinator(std::vector<ServerId> cohorts, std::vector<crypto::PublicKey> keys);

  /// Assembles the phase-1 partial block from a batch. `signers` is the
  /// witness set whose co-sign will seal the block (all servers under the
  /// global protocol; the group under §4.6 group commit).
  static Block make_partial_block(std::uint64_t height, const crypto::Digest& prev_hash,
                                  std::vector<txn::Transaction> txns,
                                  std::vector<ServerId> signers);

  GetVoteMsg start(Block partial_block, std::vector<SignedEndTxn> requests);

  /// Pins the real chain position of a speculatively opened round (the
  /// opening carried a projected height and no prev-hash) — must run before
  /// on_votes() computes the challenge over the completed block.
  void rebase(std::uint64_t height, const crypto::Digest& prev_hash) {
    block_.height = height;
    block_.prev_hash = prev_hash;
  }

  /// Phase 3: consumes all votes (one per cohort, in cohort order) and
  /// produces the challenge messages. An honest coordinator broadcasts —
  /// the returned vector has a single element every cohort receives; an
  /// equivocating one returns one (divergent) message per cohort.
  std::vector<ChallengeMsg> on_votes(std::span<const VoteMsg> votes,
                                     const CoordinatorFaults& faults = {});

  /// Phase 5: consumes all responses and finalizes.
  TfCommitOutcome on_responses(std::span<const ResponseMsg> responses);

  const Block& block() const { return block_; }

 private:
  std::vector<ServerId> cohorts_;
  std::vector<crypto::PublicKey> keys_;

  Block block_;
  std::vector<crypto::AffinePoint> commitments_;  // per cohort
  crypto::AffinePoint aggregate_v_;
  crypto::U256 challenge_;
};

/// Identifies which servers a block involves, via item placement: server i
/// owns shard i. Exposed for the coordinator, OrdServ grouping, and audits.
std::vector<ServerId> involved_servers(const Block& block, std::uint32_t num_servers);

}  // namespace fides::commit
