// Timestamp-ordering optimistic concurrency control (§4.3.1).
//
// "Similar to timestamp based optimistic concurrency control, at commit
// time, a server checks if the data accessed in the terminating transaction
// has been updated since they were read. If yes, the server chooses to
// abort." A server votes commit only when the transaction serializes at its
// client-assigned commit timestamp:
//   * every read still sees the current version (no intervening writer) and
//     the commit timestamp exceeds the version it read;
//   * every write targets items whose current rts and wts both precede the
//     commit timestamp (no RW-, WW-, or WR-conflict per Lemma 3).
#pragma once

#include <string>

#include "store/shard.hpp"
#include "txn/transaction.hpp"

namespace fides::txn {

enum class Vote : std::uint8_t {
  kCommit,
  kAbort,
};

struct ValidationResult {
  Vote vote{Vote::kAbort};
  std::string reason;  ///< human-readable abort cause (empty on commit)

  bool ok() const { return vote == Vote::kCommit; }
};

/// Validates the sub-RwSet of `txn` that touches items owned by `state`.
/// Items owned by other shards are ignored (each cohort validates only its
/// own partition). `state` is anything with Shard's contains()/peek()
/// surface — the shard itself, or a store::ShardOverlay carrying the staged
/// effects of in-flight blocks (speculative voting).
template <typename StateT>
ValidationResult validate_occ(const StateT& state, const Transaction& txn) {
  const Timestamp ts = txn.commit_ts;

  for (const auto& r : txn.rw.reads) {
    if (!state.contains(r.id)) continue;
    const store::ItemRecord& cur = state.peek(r.id);
    if (cur.wts != r.wts) {
      return {Vote::kAbort, "read of item " + std::to_string(r.id) +
                                " is stale: item was rewritten after the read"};
    }
    if (!(cur.wts < ts)) {
      return {Vote::kAbort, "RW-conflict: item " + std::to_string(r.id) +
                                " carries a write timestamp >= commit timestamp"};
    }
  }

  for (const auto& w : txn.rw.writes) {
    if (!state.contains(w.id)) continue;
    const store::ItemRecord& cur = state.peek(w.id);
    if (!(cur.wts < ts)) {
      return {Vote::kAbort, "WW-conflict: item " + std::to_string(w.id) +
                                " was written at or after commit timestamp"};
    }
    if (!(cur.rts < ts)) {
      return {Vote::kAbort, "WR-conflict: item " + std::to_string(w.id) +
                                " was read at or after commit timestamp"};
    }
    // The write entry records the item state observed at access; a write
    // over a version the client never saw (non-blind case) is stale.
    if (!w.blind() && cur.wts != w.wts) {
      return {Vote::kAbort, "write of item " + std::to_string(w.id) +
                                " based on a stale read"};
    }
  }

  return {Vote::kCommit, {}};
}

/// Applies the committed transaction's effects on `shard`: installs writes,
/// advances rts on reads and rts+wts on writes to the commit timestamp
/// (§4.1 step 7, "Update datastore").
void apply_committed(store::Shard& shard, const Transaction& txn);

}  // namespace fides::txn
