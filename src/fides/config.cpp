#include "fides/config.hpp"

// ClusterConfig is a plain aggregate; defaults live in the header. This
// translation unit anchors the library target.
