#include "ledger/log.hpp"

#include <stdexcept>
#include <utility>

namespace fides::ledger {

void TamperProofLog::append(Block block) {
  if (block.height != blocks_.size()) {
    throw std::invalid_argument("TamperProofLog::append: height mismatch");
  }
  if (!(block.prev_hash == head_hash())) {
    throw std::invalid_argument("TamperProofLog::append: prev_hash mismatch");
  }
  blocks_.push_back(std::move(block));
}

crypto::Digest TamperProofLog::head_hash() const {
  return blocks_.empty() ? crypto::Digest::zero() : blocks_.back().digest();
}

const Block* TamperProofLog::latest_block_with_root(ServerId server) const {
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    if (it->root_of(server) != nullptr) return &*it;
  }
  return nullptr;
}

void TamperProofLog::tamper_block(std::size_t i, Block replacement) {
  blocks_.at(i) = std::move(replacement);
}

void TamperProofLog::tamper_read_value(std::size_t block, std::size_t txn,
                                       std::size_t read, Bytes value) {
  blocks_.at(block).txns.at(txn).rw.reads.at(read).value = std::move(value);
}

void TamperProofLog::reorder(std::size_t i, std::size_t j) {
  std::swap(blocks_.at(i), blocks_.at(j));
}

void TamperProofLog::truncate_tail(std::size_t keep_count) {
  if (keep_count < blocks_.size()) blocks_.resize(keep_count);
}

}  // namespace fides::ledger
