// The durable per-server round log — what a server may lose and re-find.
//
// The tamper-proof block log (ledger/log.hpp) is the *replicated* ledger;
// this file is the *local* durable state a server writes at each commit-round
// transition so that it can crash, lose every in-memory structure, and
// rejoin mid-round without equivocating:
//
//   * kVote     — the exact vote bytes the server sent for one engine epoch
//                 (TFCommit VoteMsg / 2PC PrepareVoteMsg). Written before the
//                 vote leaves the node: on restart the server re-sends these
//                 bytes, never a recomputed (possibly different) vote.
//   * kDecision — the finalized block the server appended and applied. The
//                 replay of these records rebuilds the ledger, the datastore
//                 shard, and the pipeline apply watermark.
//
// Records are framed by the engine epoch and chained by a running SHA-256
// (h_i = H(h_{i-1} ‖ record_i)); replay() verifies the chain and refuses a
// log whose bytes were altered — a crashed server must restore exactly what
// it promised or not restore at all (the vote-once / no-equivocation
// guarantee across restarts).
//
// Two implementations behind one interface: MemRoundLog (default — survives
// the Server object, not the process) and FileRoundLog (append-only file,
// one per server, re-readable across process restarts).
#pragma once

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"

namespace fides::ledger {

struct RoundRecord {
  enum class Type : std::uint8_t {
    kVote = 1,      ///< payload = serialized vote message bytes
    kDecision = 2,  ///< payload = serialized finalized Block
    kResponse = 3,  ///< payload = the CoSi challenge answered (respond-once:
                    ///< the deterministic round nonce must never sign two
                    ///< distinct challenges, even across a crash/restore)
  };

  Type type{Type::kVote};
  std::uint64_t epoch{0};    ///< engine epoch the record belongs to
  /// Speculated-base discriminator of a vote (VoteMsg::base_key; 0 for a
  /// vote on fully-applied state and for every decision). A re-vote after a
  /// mis-speculated base is a distinct logical vote: it gets its own
  /// (epoch, base) record, and the vote-once guarantee is per (epoch, base).
  std::uint64_t base{0};
  std::string msg_type;      ///< wire type tag ("tf_vote", "2pc_vote", ...)
  Bytes payload;

  Bytes encode() const;
  static std::optional<RoundRecord> decode(BytesView b);

  friend bool operator==(const RoundRecord&, const RoundRecord&) = default;
};

class RoundLog {
 public:
  virtual ~RoundLog() = default;

  /// Appends one record durably (in-memory logs: beyond the Server's
  /// lifetime; file logs: beyond the process's).
  virtual void append(const RoundRecord& record) = 0;

  virtual std::size_t size() const = 0;

  /// All records in append order, or nullopt if the chained integrity check
  /// fails — a tampered log must refuse to restore (it could otherwise make
  /// the server equivocate on a replayed vote).
  virtual std::optional<std::vector<RoundRecord>> replay() const = 0;
};

/// Chain hash step shared by both implementations (and by replay
/// verification): h' = SHA-256(h ‖ record bytes).
crypto::Digest chain_record(const crypto::Digest& head, BytesView record_bytes);

class MemRoundLog final : public RoundLog {
 public:
  void append(const RoundRecord& record) override;
  std::size_t size() const override { return records_.size(); }
  std::optional<std::vector<RoundRecord>> replay() const override;

  /// Fault injection for tests: flip one byte of record i's stored bytes.
  /// replay() must subsequently refuse.
  void tamper(std::size_t i, std::size_t byte_offset);

 private:
  struct Entry {
    Bytes bytes;
    crypto::Digest chain;  ///< running hash up to and including this record
  };
  std::vector<Entry> records_;
  crypto::Digest head_;  ///< chain head (zero digest for an empty log)
};

/// Append-only file log: [u32 length][record bytes][32-byte chain hash]*.
/// The chain hash after each record makes truncation-to-a-prefix the only
/// undetectable mutation — and a truncated log restores a shorter (strict
/// prefix) state, which the recovery protocol then tops up from survivors,
/// so even that cannot cause equivocation.
class FileRoundLog final : public RoundLog {
 public:
  explicit FileRoundLog(std::string path);
  ~FileRoundLog() override;

  FileRoundLog(const FileRoundLog&) = delete;
  FileRoundLog& operator=(const FileRoundLog&) = delete;

  void append(const RoundRecord& record) override;
  std::size_t size() const override { return count_; }
  std::optional<std::vector<RoundRecord>> replay() const override;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::size_t count_{0};
  crypto::Digest head_;
  std::FILE* out_{nullptr};  ///< append handle, held for the log's lifetime
};

}  // namespace fides::ledger
