// Group commit: scaled TFCommit (§4.6).
//
// Instead of one global coordinator and all-server participation, each batch
// is terminated by the group of servers it actually touches; the group's
// coordinator runs TFCommit among the members only, then publishes the
// co-signed block to OrdServ, which broadcasts one consistently ordered,
// hash-chained stream to every server.
//
// Note on what the co-sign covers: the group signs the block with
// height 0 / zero prev-hash (OrdServ fills those afterwards — "the
// coordinators of the groups do not fill in the hash of the previous block,
// rather it is filled by the OrdServ"). Verifiers therefore check the inner
// co-sign over the *unchained* bytes (ledger::unchained_signing_bytes) plus
// the outer OrdServ hash chain.
//
// Two drivers share this module's validation and epoch rules:
//   GroupCommitRunner (below) — the sequential lock-step reference driver.
//   GroupEngine (group_engine.hpp) — the engine-routed driver: every group
//     round runs on message reactors under a Scheduler, with pipelining,
//     speculation, durable round logs, and crash/recovery. The two produce
//     bit-identical sequenced streams for the same batches.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "fides/cluster.hpp"
#include "ordserv/sequencer.hpp"

namespace fides::ordserv {

/// Group rounds draw their CoSi round ids / durable-log epochs from the
/// *sequencer's* counter OR-ed with this bit. Both the sequencer's and the
/// cluster engine's counters hand out 1, 2, 3, ... — without the domain tag a
/// cluster running both kinds of rounds against one durable round log would
/// collide on the (epoch, base) vote key. Bit 63 is already the engine's
/// termination domain, so group commit takes bit 62.
inline constexpr std::uint64_t kGroupEpochDomain = 1ULL << 62;

inline std::uint64_t group_epoch(std::uint64_t sequencer_epoch) {
  return sequencer_epoch | kGroupEpochDomain;
}

struct GroupRoundResult {
  ledger::Decision decision{ledger::Decision::kAbort};
  ServerGroup group;
  std::uint64_t global_height{0};
  bool cosign_valid{false};
  std::size_t group_size{0};
  /// Why the round never reached OrdServ (empty when it was sequenced):
  /// refused batches, mismatched challenge fan-outs, unsignable blocks.
  std::string fault;
  /// Cohort refusals surfaced by the coordinator (evidence for detection).
  std::vector<std::pair<ServerId, std::string>> refusals;
  /// Cohorts whose co-sign shares failed attribution (Lemma 4).
  std::vector<ServerId> faulty_cosigners;
};

/// Evidence a delivering server records when a sequenced entry fails
/// validation: the stream halts at that height, nothing later is applied.
struct DeliveryRefusal {
  std::uint64_t height{0};
  std::string reason;
};

/// Incremental stream validation state: the expected chain position plus the
/// item→height map dependencies are recomputed from. One instance per
/// consumer (a delivering server, or a whole-stream scan); feed it entries in
/// height order via check().
///
/// check() verifies, against the running state:
///   - outer chain: entry height == next expected, prev_hash == running head;
///   - inner co-sign: present, signers in range, valid over the *unchained*
///     block bytes under the entry's group;
///   - dependency metadata: every dependency height precedes this entry, and
///     — because `depends_on` is sequencer-computed and covered by no
///     signature — the dependencies recomputed from the block's own touched
///     items must all be declared. A lying OrdServ that under-reports a
///     cross-group dependency is flagged here, not trusted.
/// On success the state advances and nullopt is returned; on failure the
/// state is left unchanged and the refusal reason is returned.
struct StreamValidator {
  std::uint64_t next_height{0};
  crypto::Digest expected_prev = crypto::Digest::zero();
  std::unordered_map<ItemId, std::uint64_t> last_touch;

  std::optional<std::string> check(const SequencedBlock& entry,
                                   std::span<const crypto::PublicKey> all_server_keys);
};

/// Validates an OrdServ stream from genesis: inner co-sign per entry (over
/// the unchained block bytes, under the entry's group), outer hash chain, and
/// dependency completeness + order (see StreamValidator). Returns the index
/// of the first bad entry, or nullopt when clean.
std::optional<std::size_t> validate_stream(
    std::span<const SequencedBlock> stream,
    std::span<const crypto::PublicKey> all_server_keys);

class GroupCommitRunner {
 public:
  GroupCommitRunner(Cluster& cluster, Sequencer& sequencer)
      : cluster_(&cluster), sequencer_(&sequencer),
        delivered_(cluster.num_servers()), validators_(cluster.num_servers()),
        refusals_(cluster.num_servers()) {}

  /// Runs TFCommit for `batch` inside its group, publishes to OrdServ, and
  /// delivers + applies the stream at every server. Empty batches, mismatched
  /// coordinator fan-outs, and unsignable blocks are refused (result.fault
  /// says why) and never reach the sequencer.
  GroupRoundResult run_group_block(std::vector<commit::SignedEndTxn> batch);

  /// Delivers anything sequenced since the last delivery to every server —
  /// each entry is validated (StreamValidator) before its transactions touch
  /// a shard. Normally run_group_block calls this; exposed so tests can
  /// tamper with the sequencer directly and watch delivery refuse.
  void deliver_pending() { deliver_all(); }

  /// The globally replicated (group-mode) log as seen by one server: the
  /// entries that server accepted. Stops at the first refused entry.
  const std::vector<SequencedBlock>& log_of(ServerId server) const {
    return delivered_.at(server.value);
  }

  /// The refusal that halted delivery at `server`, if any.
  const std::optional<DeliveryRefusal>& refusal_of(ServerId server) const {
    return refusals_.at(server.value);
  }

 private:
  void deliver_all();

  Cluster* cluster_;
  Sequencer* sequencer_;
  std::vector<std::vector<SequencedBlock>> delivered_;      // per server
  std::vector<StreamValidator> validators_;                 // per server
  std::vector<std::optional<DeliveryRefusal>> refusals_;    // per server
};

}  // namespace fides::ordserv
