// Canonical binary serialization.
//
// Every structure that is hashed, signed, or exchanged between nodes goes
// through this writer/reader pair. The encoding is fixed (little-endian
// fixed-width integers, u32-length-prefixed buffers) so that a block has
// exactly one byte representation — a prerequisite for tamper evidence:
// the signing digest and the chain hash must be reproducible by every
// server and by the auditor.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "common/bytes.hpp"
#include "common/timestamp.hpp"

namespace fides {

/// Thrown by Reader on malformed input (truncation, oversized lengths).
/// Malformed bytes from an untrusted peer must never crash a server; callers
/// at trust boundaries catch this and treat the message as invalid.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

class Writer {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void boolean(bool v);
  /// Length-prefixed byte buffer.
  void bytes(BytesView b);
  /// Length-prefixed UTF-8/raw string.
  void str(std::string_view s);
  /// Raw bytes, no length prefix (fixed-width fields like digests).
  void raw(BytesView b);
  void timestamp(const Timestamp& ts);

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  bool boolean();
  Bytes bytes();
  std::string str();
  Bytes raw(std::size_t n);
  Timestamp timestamp();

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  /// Fails (throws DecodeError) unless the input is fully consumed.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_{0};
};

}  // namespace fides
