// Production-shaped load: open-loop clients on the simulated network.
//
// Unlike the figure benches (closed loop: the next block starts when the
// previous one finishes), this bench offers load at a configured rate —
// clients are SimNet nodes submitting on a fixed-rate or Poisson arrival
// schedule, retrying on timeout, with per-transaction latency measured on
// the virtual clock from submit to the signed commit response. That makes
// the tail (p99/p999) meaningful: it captures queueing delay when the
// offered rate approaches the pipeline's service rate.
//
// Everything here runs on virtual time, so every number in the table is
// byte-reproducible from the seed — the whole sweep lands in the `exact`
// group of the JSON report and is gated exactly by tools/bench_diff.py.
//
// Knobs: FIDES_RATE scales the sweep's center rate; FIDES_CLIENTS sizes the
// client population; FIDES_BENCH_TXNS/SEEDS/PIPELINE/SPEC as usual.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fides;
  bench::print_header(
      "Open loop: offered-load sweep, 5 servers, 20 txns/block, SimNet",
      "latency flat until the knee, then the tail (p99/p999) grows first");

  bench::BenchReport report("openloop");
  bench::stamp_config(report);

  std::printf("%-9s %-12s %-10s %-10s %-10s %-10s %-10s %-9s %-9s\n", "arrival",
              "offered_tps", "tput_tps", "p50_ms", "p99_ms", "p999_ms", "max_ms",
              "retries", "aborted");

  const double center = bench::env_double("FIDES_RATE", 2000.0);
  for (const workload::ArrivalProcess process :
       {workload::ArrivalProcess::kFixedRate, workload::ArrivalProcess::kPoisson}) {
    for (const double scale : {0.25, 1.0, 4.0}) {
      workload::ExperimentConfig cfg;
      cfg.cluster.num_servers = 5;
      cfg.cluster.items_per_shard = 10000;
      cfg.cluster.max_batch_size = 20;
      cfg.txns_per_block = 20;
      cfg.cluster.network.mode = sim::NetworkMode::kSimulated;
      cfg.cluster.network.sim.seed = bench::env_size("FIDES_SIM_SEED", 1);
      cfg.arrival.process = process;
      cfg.arrival.rate_tps = center * scale;
      cfg.arrival.num_clients =
          static_cast<std::uint32_t>(bench::env_size("FIDES_CLIENTS", 4));
      cfg.total_txns = bench::bench_txns();
      cfg.cluster.sign_data_path = false;
      cfg.cluster.num_threads = bench::bench_threads();
      cfg.cluster.pipeline_depth = bench::bench_pipeline();
      cfg.cluster.speculate = bench::bench_speculate();

      const auto seeds = bench::bench_seeds();
      const auto r = workload::run_averaged(cfg, seeds);

      const char* name =
          process == workload::ArrivalProcess::kPoisson ? "poisson" : "fixed";
      std::printf("%-9s %-12.0f %-10.0f %-10.3f %-10.3f %-10.3f %-10.3f %-9zu %-9zu\n",
                  name, cfg.arrival.rate_tps, r.throughput_tps, r.p50_ms, r.p99_ms,
                  r.p999_ms, r.max_ms, static_cast<std::size_t>(r.client_retries),
                  r.aborted_txns);
      bench::add_experiment_point(
          report,
          std::string(name) + "/rate" + std::to_string(static_cast<long>(cfg.arrival.rate_tps)),
          r);
    }
  }

  bench::finish_report(report, argc, argv);
  return 0;
}
