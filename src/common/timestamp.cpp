#include "common/timestamp.hpp"

#include <algorithm>

namespace fides {

std::string to_string(const Timestamp& ts) {
  return "ts-" + std::to_string(ts.logical) + ":" + std::to_string(ts.client);
}

Timestamp TimestampOracle::next() {
  ++logical_;
  return Timestamp{logical_, client_.value};
}

void TimestampOracle::observe(const Timestamp& ts) {
  logical_ = std::max(logical_, ts.logical);
}

}  // namespace fides
