#include "txn/transaction.hpp"

#include <algorithm>
#include <unordered_set>

namespace fides::txn {

const ReadEntry* RwSet::find_read(ItemId id) const {
  const auto it = std::find_if(reads.begin(), reads.end(),
                               [&](const ReadEntry& e) { return e.id == id; });
  return it != reads.end() ? &*it : nullptr;
}

const WriteEntry* RwSet::find_write(ItemId id) const {
  const auto it = std::find_if(writes.begin(), writes.end(),
                               [&](const WriteEntry& e) { return e.id == id; });
  return it != writes.end() ? &*it : nullptr;
}

std::vector<ItemId> RwSet::touched_items() const {
  std::vector<ItemId> items;
  items.reserve(reads.size() + writes.size());
  for (const auto& r : reads) items.push_back(r.id);
  for (const auto& w : writes) items.push_back(w.id);
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  return items;
}

void RwSet::encode(Writer& w) const {
  w.u32(static_cast<std::uint32_t>(reads.size()));
  for (const auto& r : reads) {
    w.u64(r.id);
    w.bytes(r.value);
    w.timestamp(r.rts);
    w.timestamp(r.wts);
  }
  w.u32(static_cast<std::uint32_t>(writes.size()));
  for (const auto& wr : writes) {
    w.u64(wr.id);
    w.bytes(wr.new_value);
    w.boolean(wr.old_value.has_value());
    if (wr.old_value) w.bytes(*wr.old_value);
    w.timestamp(wr.rts);
    w.timestamp(wr.wts);
  }
}

RwSet RwSet::decode(Reader& r) {
  RwSet set;
  // Entry counts arrive from untrusted peers: an announced count larger than
  // the bytes left to decode is a protocol violation, not an allocation
  // request (every entry consumes at least one byte), so it must never reach
  // reserve(). Same doctrine as the frame-size cap in net/frame.hpp.
  const std::uint32_t nr = r.u32();
  if (nr > r.remaining()) throw DecodeError("read-set count exceeds payload");
  set.reads.reserve(nr);
  for (std::uint32_t i = 0; i < nr; ++i) {
    ReadEntry e;
    e.id = r.u64();
    e.value = r.bytes();
    e.rts = r.timestamp();
    e.wts = r.timestamp();
    set.reads.push_back(std::move(e));
  }
  const std::uint32_t nw = r.u32();
  if (nw > r.remaining()) throw DecodeError("write-set count exceeds payload");
  set.writes.reserve(nw);
  for (std::uint32_t i = 0; i < nw; ++i) {
    WriteEntry e;
    e.id = r.u64();
    e.new_value = r.bytes();
    if (r.boolean()) e.old_value = r.bytes();
    e.rts = r.timestamp();
    e.wts = r.timestamp();
    set.writes.push_back(std::move(e));
  }
  return set;
}

void Transaction::encode(Writer& w) const {
  w.u32(id.client);
  w.u64(id.seq);
  w.timestamp(commit_ts);
  rw.encode(w);
}

Transaction Transaction::decode(Reader& r) {
  Transaction t;
  t.id.client = r.u32();
  t.id.seq = r.u64();
  t.commit_ts = r.timestamp();
  t.rw = RwSet::decode(r);
  return t;
}

bool non_conflicting(const Transaction& a, const Transaction& b) {
  const auto ia = a.rw.touched_items();
  const auto ib = b.rw.touched_items();
  std::unordered_set<ItemId> set(ia.begin(), ia.end());
  return std::none_of(ib.begin(), ib.end(),
                      [&](ItemId id) { return set.count(id) != 0; });
}

}  // namespace fides::txn
