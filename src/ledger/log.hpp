// The globally replicated tamper-proof log (§3.1, §4.4).
//
// A linked list of blocks chained by hash pointers. Every server keeps a
// full copy; immutability comes from the co-sign in each block (no subset of
// servers can rewrite a block) plus the hash chain (no subset can reorder).
//
// The class enforces chain discipline on append for correct servers, and
// exposes explicitly named *malicious* mutators (tamper/reorder/truncate)
// used by fault injection — the behaviours of §4.4 "Detecting Malicious
// Behavior" that the auditor must catch (Lemmas 6 and 7).
#pragma once

#include <vector>

#include "ledger/block.hpp"

namespace fides::ledger {

class TamperProofLog {
 public:
  /// Appends a block; requires block.height == size() and
  /// block.prev_hash == head_hash().
  void append(Block block);

  std::size_t size() const { return blocks_.size(); }
  bool empty() const { return blocks_.empty(); }
  const Block& at(std::size_t i) const { return blocks_.at(i); }
  const std::vector<Block>& blocks() const { return blocks_; }

  /// Digest of the last block, or the zero digest for an empty log — the
  /// prev_hash the next block must carry.
  crypto::Digest head_hash() const;

  /// Scans for the most recent block at or before `height` whose Σroots
  /// contain `server`; nullptr if none. (Single-versioned audits use the
  /// latest root of a shard, §4.2.2.)
  const Block* latest_block_with_root(ServerId server) const;

  // --- Malicious mutations (fault injection only) -------------------------

  /// Replaces the block at index i wholesale (contents no longer match the
  /// co-sign — Lemma 6 target).
  void tamper_block(std::size_t i, Block replacement);

  /// Overwrites a transaction's read value inside block i (Scenario 1-style
  /// history falsification).
  void tamper_read_value(std::size_t block, std::size_t txn, std::size_t read,
                         Bytes value);

  /// Swaps blocks i and j (reordering — Lemma 6 target).
  void reorder(std::size_t i, std::size_t j);

  /// Drops every block after index `keep_count - 1` (tail omission —
  /// Lemma 7 target).
  void truncate_tail(std::size_t keep_count);

 private:
  std::vector<Block> blocks_;
};

}  // namespace fides::ledger
