#include "crypto/field.hpp"

#include <stdexcept>

namespace fides::crypto {

namespace {

/// -m^{-1} mod 2^64 by Newton iteration (m odd). Five iterations double the
/// number of correct bits each time: 5 -> 10 -> 20 -> 40 -> 80 >= 64.
std::uint64_t neg_inv64(std::uint64_t m) {
  std::uint64_t inv = m;  // correct to 5 bits for odd m (m*m ≡ 1 mod 16... classical trick: inv = m works to 3 bits)
  for (int i = 0; i < 6; ++i) inv *= 2 - m * inv;
  return ~inv + 1;  // negate mod 2^64
}

}  // namespace

MontgomeryField::MontgomeryField(const U256& modulus) : m_(modulus) {
  if ((m_.w[0] & 1) == 0) throw std::invalid_argument("MontgomeryField: modulus must be odd");
  n0_ = neg_inv64(m_.w[0]);

  // R mod m: start from 1 and double 256 times mod m.
  U256 r(1);
  for (int i = 0; i < 256; ++i) {
    U256 doubled;
    const std::uint64_t carry = u256_add(doubled, r, r);
    U256 reduced;
    const std::uint64_t borrow = u256_sub(reduced, doubled, m_);
    r = (carry != 0 || borrow == 0) ? reduced : doubled;
  }
  r_ = Fe{r};

  // R^2 mod m: double another 256 times.
  U256 r2 = r;
  for (int i = 0; i < 256; ++i) {
    U256 doubled;
    const std::uint64_t carry = u256_add(doubled, r2, r2);
    U256 reduced;
    const std::uint64_t borrow = u256_sub(reduced, doubled, m_);
    r2 = (carry != 0 || borrow == 0) ? reduced : doubled;
  }
  r2_ = r2;
}

Fe MontgomeryField::mont_mul(const U256& a, const U256& b) const {
  // CIOS: interleave multiplication and Montgomery reduction.
  // t has 4 limbs + 2 overflow words.
  std::uint64_t t[6] = {0, 0, 0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    // t += a[i] * b
    std::uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      const unsigned __int128 cur = static_cast<unsigned __int128>(a.w[i]) * b.w[j] + t[j] + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    {
      const unsigned __int128 cur = static_cast<unsigned __int128>(t[4]) + carry;
      t[4] = static_cast<std::uint64_t>(cur);
      t[5] = static_cast<std::uint64_t>(cur >> 64);
    }
    // m-step: u = t[0] * n0' mod 2^64; t += u * m; t >>= 64
    const std::uint64_t u = t[0] * n0_;
    {
      const unsigned __int128 cur = static_cast<unsigned __int128>(u) * m_.w[0] + t[0];
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    for (int j = 1; j < 4; ++j) {
      const unsigned __int128 cur = static_cast<unsigned __int128>(u) * m_.w[j] + t[j] + carry;
      t[j - 1] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    {
      const unsigned __int128 cur = static_cast<unsigned __int128>(t[4]) + carry;
      t[3] = static_cast<std::uint64_t>(cur);
      t[4] = t[5] + static_cast<std::uint64_t>(cur >> 64);
      t[5] = 0;
    }
  }

  U256 res = U256::from_limbs(t[0], t[1], t[2], t[3]);
  // Final conditional subtraction: result < 2m is guaranteed by CIOS when
  // m < R/4, which holds for 256-bit moduli with top word < 2^64 (t[4] is
  // 0 or 1 here; subtract if overflow or res >= m).
  U256 reduced;
  const std::uint64_t borrow = u256_sub(reduced, res, m_);
  if (t[4] != 0 || borrow == 0) return Fe{reduced};
  return Fe{res};
}

Fe MontgomeryField::to_mont(const U256& x) const {
  const U256 xr = u256_less(x, m_) ? x : u256_mod(x, m_);
  return mont_mul(xr, r2_);
}

U256 MontgomeryField::from_mont(const Fe& a) const {
  return mont_mul(a.v, U256(1)).v;
}

Fe MontgomeryField::add(const Fe& a, const Fe& b) const {
  U256 sum;
  const std::uint64_t carry = u256_add(sum, a.v, b.v);
  U256 reduced;
  const std::uint64_t borrow = u256_sub(reduced, sum, m_);
  return (carry != 0 || borrow == 0) ? Fe{reduced} : Fe{sum};
}

Fe MontgomeryField::sub(const Fe& a, const Fe& b) const {
  U256 diff;
  const std::uint64_t borrow = u256_sub(diff, a.v, b.v);
  if (borrow != 0) {
    U256 wrapped;
    u256_add(wrapped, diff, m_);
    return Fe{wrapped};
  }
  return Fe{diff};
}

Fe MontgomeryField::neg(const Fe& a) const {
  if (a.v.is_zero()) return a;
  U256 out;
  u256_sub(out, m_, a.v);
  return Fe{out};
}

Fe MontgomeryField::mul(const Fe& a, const Fe& b) const { return mont_mul(a.v, b.v); }

Fe MontgomeryField::pow(const Fe& a, const U256& e) const {
  Fe result = one();
  const int top = e.bit_length();
  for (int i = top; i >= 0; --i) {
    result = sqr(result);
    if (e.bit(i)) result = mul(result, a);
  }
  return result;
}

Fe MontgomeryField::inverse(const Fe& a) const {
  if (a.v.is_zero()) throw std::domain_error("MontgomeryField::inverse of zero");
  U256 e;
  const U256 two(2);
  u256_sub(e, m_, two);  // m - 2
  return pow(a, e);
}

}  // namespace fides::crypto
