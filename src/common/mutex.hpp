// Annotated mutex / scoped-lock / condition-variable wrappers.
//
// Thin, zero-overhead shims over std::mutex / std::unique_lock /
// std::condition_variable that carry the clang thread-safety attributes from
// thread_annotations.hpp, so `-Wthread-safety` can prove the repo's locking
// discipline at compile time. This is the ONLY file allowed to name the raw
// std primitives — tools/fides_lint.py enforces that everything else goes
// through these wrappers (rule: raw-mutex).
//
// Usage:
//   common::Mutex mutex_;
//   int value_ GUARDED_BY(mutex_);
//   void touch() { common::MutexLock lock(mutex_); ++value_; }
//
// Condition waits use an explicit loop so the predicate is analyzed in the
// caller's scope (a predicate lambda would be analyzed as a separate
// function and spuriously warn on guarded reads):
//   common::MutexLock lock(mutex_);
//   while (!ready_) cv_.wait(lock);
#pragma once

#include <condition_variable>  // fides-lint: allow(raw-mutex) -- the sanctioned wrapper
#include <mutex>               // fides-lint: allow(raw-mutex) -- the sanctioned wrapper

#include "common/thread_annotations.hpp"

namespace fides::common {

class CondVar;

/// A std::mutex carrying the `capability` attribute. Non-recursive (clang's
/// analysis does not model recursive locking, and the repo has no recursive
/// designs left — GroupEngine's was removed when posts were deferred).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }                            // fides-lint: allow(raw-mutex)
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex m_;  // fides-lint: allow(raw-mutex) -- the wrapped primitive
};

/// RAII scoped lock over Mutex (scoped_lockable). Holds for its full scope —
/// there is deliberately no early unlock()/relock() surface: every critical
/// section in the repo is a plain block, which keeps the analysis exact.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.m_) {}
  ~MutexLock() RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;  // fides-lint: allow(raw-mutex) -- the wrapped primitive
};

/// Condition variable paired with Mutex/MutexLock. wait() takes the scoped
/// lock directly; callers loop on their predicate (see header comment).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`, blocks, and re-acquires before returning.
  /// The analysis treats the capability as held across the call (which is
  /// what callers observe: the lock is held again when wait returns).
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // fides-lint: allow(raw-mutex) -- the wrapped primitive
};

}  // namespace fides::common
