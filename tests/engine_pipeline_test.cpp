// Pipelined round-engine equivalence and checkpoint-metrics coverage.
//
// The engine contract (engine/pipeline.hpp): the same batch stream produces
// identical decisions, blocks, ledger state, and co-signs at every pipeline
// depth, under the in-process scheduler at any thread count AND over SimNet
// under reorder-heavy schedules — pipelining changes only when work runs,
// never what it computes. Batches are minted once against a pristine
// cluster and replayed on fresh clusters (client keys are deterministic per
// id, so signatures verify everywhere).
#include <gtest/gtest.h>

#include "fides/cluster.hpp"
#include "sim/simnet.hpp"
#include "workload/ycsb.hpp"

namespace fides {
namespace {

ClusterConfig base_config() {
  ClusterConfig cfg;
  cfg.num_servers = 4;
  cfg.items_per_shard = 32;
  cfg.versioning = store::VersioningMode::kMulti;
  cfg.max_batch_size = 8;
  return cfg;
}

commit::SignedEndTxn simple_txn(Cluster& cluster, Client& client,
                                std::vector<ItemId> items, const std::string& tag) {
  ClientTxn txn = client.begin();
  cluster.client_begin(client, txn.id(), items);
  for (const ItemId item : items) {
    client.read(txn, item);
    client.write(txn, item, to_bytes(tag + "-" + std::to_string(item)));
  }
  return client.end(std::move(txn));
}

/// A deterministic multi-block batch stream minted on a throwaway cluster.
std::vector<std::vector<commit::SignedEndTxn>> mint_batches(const ClusterConfig& cfg,
                                                            std::size_t blocks,
                                                            std::size_t txns_per_block) {
  Cluster mint(cfg);
  Client& client = mint.make_client();
  workload::YcsbWorkload workload(
      {}, static_cast<std::uint64_t>(cfg.num_servers) * cfg.items_per_shard, cfg.seed);
  std::vector<std::vector<commit::SignedEndTxn>> batches;
  for (std::size_t b = 0; b < blocks; ++b) {
    workload.begin_batch();
    std::vector<commit::SignedEndTxn> batch;
    for (std::size_t i = 0; i < txns_per_block; ++i) {
      batch.push_back(workload.run_transaction(client));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

struct RunFingerprint {
  std::vector<ledger::Decision> decisions;
  std::vector<unsigned char> cosigns_valid;
  std::vector<std::size_t> log_sizes;
  std::vector<crypto::Digest> head_hashes;
  std::vector<crypto::Digest> merkle_roots;
  std::vector<crypto::Digest> block_digests;  // server 0's whole chain

  friend bool operator==(const RunFingerprint&, const RunFingerprint&) = default;
};

RunFingerprint replay(ClusterConfig cfg,
                      const std::vector<std::vector<commit::SignedEndTxn>>& batches) {
  Cluster cluster(cfg);
  cluster.make_client();  // registers the deterministic client key
  const PipelineResult result = cluster.run_blocks(batches);

  RunFingerprint fp;
  for (const RoundMetrics& m : result.rounds) {
    fp.decisions.push_back(m.decision);
    fp.cosigns_valid.push_back(m.cosign_valid ? 1 : 0);
  }
  for (std::uint32_t i = 0; i < cluster.num_servers(); ++i) {
    const Server& s = cluster.server(ServerId{i});
    fp.log_sizes.push_back(s.log().size());
    fp.head_hashes.push_back(s.log().head_hash());
    fp.merkle_roots.push_back(s.shard().merkle_root());
  }
  for (const auto& block : cluster.server(ServerId{0}).log().blocks()) {
    fp.block_digests.push_back(block.digest());
  }
  return fp;
}

TEST(EnginePipeline, DepthsProduceIdenticalLedgers) {
  const ClusterConfig cfg = base_config();
  const auto batches = mint_batches(cfg, 5, 4);

  ClusterConfig d1 = cfg;
  d1.pipeline_depth = 1;
  const RunFingerprint base = replay(d1, batches);
  ASSERT_EQ(base.decisions.size(), 5u);
  EXPECT_EQ(base.decisions[0], ledger::Decision::kCommit);

  for (const std::uint32_t depth : {2u, 4u, 8u}) {
    ClusterConfig cd = cfg;
    cd.pipeline_depth = depth;
    EXPECT_TRUE(replay(cd, batches) == base) << "depth " << depth;
  }
}

TEST(EnginePipeline, DepthsIdenticalAcrossThreadCounts) {
  const ClusterConfig cfg = base_config();
  const auto batches = mint_batches(cfg, 4, 4);

  ClusterConfig d1 = cfg;
  d1.pipeline_depth = 1;
  d1.num_threads = 1;
  const RunFingerprint base = replay(d1, batches);

  for (const std::uint32_t threads : {2u, 4u, 8u}) {
    ClusterConfig cd = cfg;
    cd.pipeline_depth = 4;
    cd.num_threads = threads;
    EXPECT_TRUE(replay(cd, batches) == base) << threads << " threads";
  }
}

TEST(EnginePipeline, DepthsIdenticalOverSimNetReorderingSchedules) {
  // The gate that matters most: SimNet can deliver round k+1's get_vote
  // before round k's decision at a cohort; the engine must hold it back, so
  // the pipelined simulated ledger still matches direct depth-1 exactly.
  const ClusterConfig cfg = base_config();
  const auto batches = mint_batches(cfg, 4, 4);

  ClusterConfig d1 = cfg;
  d1.pipeline_depth = 1;
  const RunFingerprint base = replay(d1, batches);

  for (const std::uint64_t sim_seed : {1ULL, 7ULL, 99ULL}) {
    ClusterConfig cd = cfg;
    cd.pipeline_depth = 4;
    cd.network.mode = sim::NetworkMode::kSimulated;
    cd.network.sim.seed = sim_seed;
    cd.network.sim.link.min_delay_us = 10;
    cd.network.sim.link.max_delay_us = 900;  // wide window => heavy reorder
    cd.network.sim.link.drop_prob = 0.2;
    cd.network.sim.link.dup_prob = 0.2;
    EXPECT_TRUE(replay(cd, batches) == base) << "sim seed " << sim_seed;
  }
}

TEST(EnginePipeline, BatchVerifyLedgerIdenticalEverywhere) {
  // FIDES_BATCH_VERIFY changes which code path opens envelopes, never what
  // the ledger says: batched opens must be bit-identical to per-signature
  // opens across every scheduler (direct, in-process pool, SimNet), every
  // depth, and with speculation on.
  const ClusterConfig cfg = base_config();
  const auto batches = mint_batches(cfg, 4, 4);

  ClusterConfig off = cfg;
  off.pipeline_depth = 1;
  off.num_threads = 1;
  const RunFingerprint base = replay(off, batches);
  ASSERT_EQ(base.decisions.size(), 4u);

  // Direct scheduler, single thread.
  ClusterConfig direct = off;
  direct.batch_verify = true;
  EXPECT_TRUE(replay(direct, batches) == base) << "direct scheduler";

  // In-process scheduler: pipelined, multi-threaded — the inbox-batching
  // dispatch seam actually fires here.
  for (const std::uint32_t threads : {2u, 4u}) {
    ClusterConfig inproc = cfg;
    inproc.batch_verify = true;
    inproc.pipeline_depth = 4;
    inproc.num_threads = threads;
    EXPECT_TRUE(replay(inproc, batches) == base) << "inproc " << threads << " threads";
  }

  // SimNet under heavy reordering, with and without speculation.
  for (const bool speculate : {false, true}) {
    ClusterConfig sim = cfg;
    sim.batch_verify = true;
    sim.speculate = speculate;
    sim.pipeline_depth = 4;
    sim.network.mode = sim::NetworkMode::kSimulated;
    sim.network.sim.seed = 7;
    sim.network.sim.link.min_delay_us = 10;
    sim.network.sim.link.max_delay_us = 900;
    sim.network.sim.link.drop_prob = 0.2;
    sim.network.sim.link.dup_prob = 0.2;
    EXPECT_TRUE(replay(sim, batches) == base) << "simnet spec=" << speculate;
    sim.batch_verify = false;
    EXPECT_TRUE(replay(sim, batches) == base) << "simnet off spec=" << speculate;
  }
}

TEST(EnginePipeline, TwoPhaseCommitDepthsIdenticalToo) {
  ClusterConfig cfg = base_config();
  cfg.protocol = Protocol::kTwoPhaseCommit;
  const auto batches = mint_batches(cfg, 4, 4);

  ClusterConfig d1 = cfg;
  d1.pipeline_depth = 1;
  const RunFingerprint base = replay(d1, batches);

  ClusterConfig d4 = cfg;
  d4.pipeline_depth = 4;
  EXPECT_TRUE(replay(d4, batches) == base);

  ClusterConfig sim4 = d4;
  sim4.network.mode = sim::NetworkMode::kSimulated;
  sim4.network.sim.seed = 5;
  sim4.network.sim.link.max_delay_us = 700;
  sim4.network.sim.link.drop_prob = 0.15;
  EXPECT_TRUE(replay(sim4, batches) == base);
}

TEST(EnginePipeline, ConflictingBlocksAbortIdenticallyAtEveryDepth) {
  // Block 2 is stale once block 1 commits: the abort (co-signed abort
  // block) must land identically at every depth — ledger append order is
  // sequential, pipelined or not.
  const ClusterConfig cfg = base_config();
  std::vector<std::vector<commit::SignedEndTxn>> batches;
  {
    Cluster mint(cfg);
    Client& client = mint.make_client();
    auto t1 = simple_txn(mint, client, {5}, "x");
    auto t2 = simple_txn(mint, client, {5}, "y");
    auto t3 = simple_txn(mint, client, {9}, "z");
    batches.push_back({std::move(t1)});
    batches.push_back({std::move(t2)});
    batches.push_back({std::move(t3)});
  }

  ClusterConfig d1 = cfg;
  d1.pipeline_depth = 1;
  const RunFingerprint base = replay(d1, batches);
  ASSERT_EQ(base.decisions,
            (std::vector<ledger::Decision>{ledger::Decision::kCommit,
                                           ledger::Decision::kAbort,
                                           ledger::Decision::kCommit}));
  EXPECT_EQ(base.log_sizes[0], 3u);  // the abort block is logged and co-signed

  ClusterConfig d4 = cfg;
  d4.pipeline_depth = 4;
  EXPECT_TRUE(replay(d4, batches) == base);
}

TEST(EnginePipeline, ByzantineAttributionIdenticalAtDepth) {
  // A corrupt cosigner voids every round's co-sign, so no block is ever
  // appended and every partial block reuses height 0 — the engine must
  // still route rounds correctly (epoch tags, not heights) and attribute
  // the culprit identically at any depth.
  auto run = [](std::uint32_t depth) {
    ClusterConfig cfg = base_config();
    cfg.pipeline_depth = depth;
    Cluster cluster(cfg);
    Client& client = cluster.make_client();
    cluster.server(ServerId{2}).faults().cohort.corrupt_sch_response = true;
    std::vector<std::vector<commit::SignedEndTxn>> batches;
    batches.push_back({simple_txn(cluster, client, {0, 1}, "a")});
    batches.push_back({simple_txn(cluster, client, {2, 3}, "b")});
    batches.push_back({simple_txn(cluster, client, {4, 5}, "c")});
    const PipelineResult result = cluster.run_blocks(std::move(batches));
    std::vector<std::vector<ServerId>> faulty;
    for (const RoundMetrics& m : result.rounds) {
      EXPECT_FALSE(m.cosign_valid);
      faulty.push_back(m.faulty_cosigners);
    }
    EXPECT_EQ(cluster.server(ServerId{0}).log().size(), 0u);
    return faulty;
  };
  const auto seq = run(1);
  const auto pipe = run(4);
  ASSERT_EQ(seq.size(), 3u);
  for (const auto& f : seq) {
    ASSERT_EQ(f.size(), 1u);
    EXPECT_EQ(f[0], ServerId{2});
  }
  EXPECT_EQ(pipe, seq);
}

TEST(EnginePipeline, PipelineResultReportsWallAndPerRoundMetrics) {
  ClusterConfig cfg = base_config();
  cfg.pipeline_depth = 2;
  const auto batches = mint_batches(cfg, 3, 2);
  Cluster cluster(cfg);
  cluster.make_client();
  const PipelineResult result = cluster.run_blocks(batches);
  ASSERT_EQ(result.rounds.size(), 3u);
  EXPECT_GT(result.wall_us, 0.0);
  for (const RoundMetrics& m : result.rounds) {
    EXPECT_EQ(m.txns_in_block, 2u);
    EXPECT_GT(m.coordinator_us, 0.0);
    EXPECT_GT(m.cohort_critical_us, 0.0);
    EXPECT_GT(m.measured_latency_us, 0.0);
    EXPECT_GT(m.modeled_latency_us, 0.0);
    EXPECT_EQ(m.network_legs, 6u);
  }
}

TEST(EnginePipeline, CheckpointMetricsPopulatedUniformly) {
  // Satellite: the checkpoint path reports modeled + measured latency like
  // the commit paths, in both direct and simulated modes.
  for (const bool simulated : {false, true}) {
    ClusterConfig cfg = base_config();
    if (simulated) {
      cfg.network.mode = sim::NetworkMode::kSimulated;
      cfg.network.sim.seed = 3;
    }
    Cluster cluster(cfg);
    Client& client = cluster.make_client();
    cluster.run_block({simple_txn(cluster, client, {0, 1}, "a")});

    const CheckpointOutcome outcome = cluster.run_checkpoint_round();
    ASSERT_TRUE(outcome.checkpoint.has_value()) << (simulated ? "sim" : "direct");
    EXPECT_EQ(outcome.checkpoint->height, 1u);
    EXPECT_TRUE(outcome.metrics.cosign_valid);
    EXPECT_EQ(outcome.metrics.network_legs, 4u);
    EXPECT_GT(outcome.metrics.coordinator_us, 0.0);
    EXPECT_GT(outcome.metrics.cohort_critical_us, 0.0);
    EXPECT_GT(outcome.metrics.measured_latency_us, 0.0);
    EXPECT_GT(outcome.metrics.modeled_latency_us, 0.0);
  }
}

TEST(EnginePipeline, CheckpointIdenticalAcrossSchedulersAfterPipelinedRun) {
  const ClusterConfig cfg = base_config();
  const auto batches = mint_batches(cfg, 3, 3);

  auto checkpoint_after = [&](ClusterConfig run_cfg) {
    Cluster cluster(run_cfg);
    cluster.make_client();
    cluster.run_blocks(batches);
    return cluster.create_checkpoint();
  };

  ClusterConfig d1 = cfg;
  d1.pipeline_depth = 1;
  const auto direct = checkpoint_after(d1);
  ASSERT_TRUE(direct.has_value());

  ClusterConfig sim4 = cfg;
  sim4.pipeline_depth = 4;
  sim4.network.mode = sim::NetworkMode::kSimulated;
  sim4.network.sim.seed = 11;
  sim4.network.sim.link.max_delay_us = 600;
  const auto simulated = checkpoint_after(sim4);
  ASSERT_TRUE(simulated.has_value());

  EXPECT_EQ(direct->height, simulated->height);
  EXPECT_TRUE(direct->head_hash == simulated->head_hash);
  // Deterministic nonces: even the aggregate signature bits match.
  EXPECT_TRUE(direct->cosign == simulated->cosign);
}

// --- Speculative pipelining ---------------------------------------------------

RunFingerprint replay_with_revotes(ClusterConfig cfg,
                                   const std::vector<std::vector<commit::SignedEndTxn>>& batches,
                                   std::size_t* revotes) {
  Cluster cluster(cfg);
  cluster.make_client();
  const PipelineResult result = cluster.run_blocks(batches);
  RunFingerprint fp;
  *revotes = 0;
  for (const RoundMetrics& m : result.rounds) {
    fp.decisions.push_back(m.decision);
    fp.cosigns_valid.push_back(m.cosign_valid ? 1 : 0);
    *revotes += m.spec_revotes;
  }
  for (std::uint32_t i = 0; i < cluster.num_servers(); ++i) {
    const Server& s = cluster.server(ServerId{i});
    fp.log_sizes.push_back(s.log().size());
    fp.head_hashes.push_back(s.log().head_hash());
    fp.merkle_roots.push_back(s.shard().merkle_root());
  }
  for (const auto& block : cluster.server(ServerId{0}).log().blocks()) {
    fp.block_digests.push_back(block.digest());
  }
  return fp;
}

TEST(EnginePipeline, SpeculationLedgerIdenticalAcrossDepthsAndThreads) {
  // The headline speculation contract: dropping the apply-watermark gate and
  // voting on pending overlays must be invisible in the committed ledger —
  // at every depth and thread count, co-sign bits included.
  const ClusterConfig cfg = base_config();
  const auto batches = mint_batches(cfg, 6, 4);

  ClusterConfig d1 = cfg;
  d1.pipeline_depth = 1;
  const RunFingerprint base = replay(d1, batches);
  ASSERT_EQ(base.decisions.size(), 6u);

  for (const std::uint32_t depth : {1u, 2u, 4u, 8u}) {
    for (const std::uint32_t threads : {1u, 0u}) {  // 0 = hardware concurrency
      ClusterConfig sp = cfg;
      sp.pipeline_depth = depth;
      sp.num_threads = threads;
      sp.speculate = true;
      EXPECT_TRUE(replay(sp, batches) == base)
          << "speculate depth " << depth << ", threads " << threads;
    }
  }
}

TEST(EnginePipeline, SpeculationLedgerIdenticalOverSimNet) {
  const ClusterConfig cfg = base_config();
  const auto batches = mint_batches(cfg, 5, 4);

  ClusterConfig d1 = cfg;
  d1.pipeline_depth = 1;
  const RunFingerprint base = replay(d1, batches);

  for (const std::uint64_t sim_seed : {1ULL, 7ULL, 99ULL}) {
    for (const std::uint32_t depth : {2u, 4u, 8u}) {
      ClusterConfig sp = cfg;
      sp.pipeline_depth = depth;
      sp.speculate = true;
      sp.network.mode = sim::NetworkMode::kSimulated;
      sp.network.sim.seed = sim_seed;
      sp.network.sim.link.min_delay_us = 10;
      sp.network.sim.link.max_delay_us = 900;  // wide window => heavy reorder
      sp.network.sim.link.drop_prob = 0.2;
      sp.network.sim.link.dup_prob = 0.2;
      EXPECT_TRUE(replay(sp, batches) == base)
          << "sim seed " << sim_seed << " depth " << depth;
    }
  }
}

TEST(EnginePipeline, MisSpeculatedRoundsRevoteToTheGatedLedger) {
  // Abort-heavy cross-shard schedule: block 1 aborts on shard 1's veto
  // (stale read of item 1) while shard 0 voted commit — so shard 0's
  // speculative vote for block 2 stacks block 1's write of item 4 that
  // never lands, votes abort on a phantom conflict, and must be discarded
  // and re-voted once the truth arrives. The committed ledger still has to
  // come out bit-identical to the lock-step run.
  const ClusterConfig cfg = base_config();
  std::vector<std::vector<commit::SignedEndTxn>> batches;
  {
    Cluster mint(cfg);
    Client& client = mint.make_client();
    auto t1 = simple_txn(mint, client, {0, 1}, "x");  // block 0: commits
    auto t2 = simple_txn(mint, client, {4, 1}, "y");  // block 1: shard 1 vetoes
    auto t3 = simple_txn(mint, client, {4}, "z");     // block 2: commits iff 1 aborted
    batches.push_back({std::move(t1)});
    batches.push_back({std::move(t2)});
    batches.push_back({std::move(t3)});
  }

  ClusterConfig d1 = cfg;
  d1.pipeline_depth = 1;
  std::size_t base_revotes = 0;
  const RunFingerprint base = replay_with_revotes(d1, batches, &base_revotes);
  ASSERT_EQ(base.decisions,
            (std::vector<ledger::Decision>{ledger::Decision::kCommit,
                                           ledger::Decision::kAbort,
                                           ledger::Decision::kCommit}));
  EXPECT_EQ(base_revotes, 0u);

  ClusterConfig sp = cfg;
  sp.pipeline_depth = 4;
  sp.speculate = true;
  std::size_t revotes = 0;
  EXPECT_TRUE(replay_with_revotes(sp, batches, &revotes) == base);
  EXPECT_GT(revotes, 0u) << "schedule was meant to force a mis-speculation";

  ClusterConfig sim = sp;
  sim.network.mode = sim::NetworkMode::kSimulated;
  sim.network.sim.seed = 21;
  sim.network.sim.link.max_delay_us = 700;
  sim.network.sim.link.dup_prob = 0.15;
  std::size_t sim_revotes = 0;
  EXPECT_TRUE(replay_with_revotes(sim, batches, &sim_revotes) == base);
  EXPECT_GT(sim_revotes, 0u);
}

TEST(EnginePipeline, SpeculationShowsRealOverlapOnTheVirtualClock) {
  // The point of the exercise: at depth 4 the vote exchange of round k+1
  // overlaps round k's challenge/response and decision legs, so SimNet
  // virtual time per round drops well below the lock-step engine's — the
  // old watermark-gated pipeline plateaued at ~1.19x regardless of depth.
  const ClusterConfig cfg = base_config();
  const auto batches = mint_batches(cfg, 12, 3);

  auto virtual_span = [&](std::uint32_t depth, bool speculate) {
    ClusterConfig run = cfg;
    run.pipeline_depth = depth;
    run.speculate = speculate;
    run.network.mode = sim::NetworkMode::kSimulated;
    run.network.sim.seed = 5;
    Cluster cluster(run);
    cluster.make_client();
    cluster.run_blocks(batches);
    return cluster.simnet()->now_us();
  };

  const double lockstep_d1 = virtual_span(1, false);
  const double spec_d4 = virtual_span(4, true);
  EXPECT_GE(lockstep_d1 / spec_d4, 1.5)
      << "lockstep depth1 " << lockstep_d1 << "us vs speculative depth4 "
      << spec_d4 << "us";
}

TEST(EnginePipeline, EpochsAdvancePerRound) {
  ClusterConfig cfg = base_config();
  Cluster cluster(cfg);
  Client& client = cluster.make_client();
  const std::uint64_t before = cluster.epochs().issued();
  std::vector<std::vector<commit::SignedEndTxn>> batches;
  batches.push_back({simple_txn(cluster, client, {0}, "a")});
  batches.push_back({simple_txn(cluster, client, {1}, "b")});
  cluster.run_blocks(std::move(batches));
  EXPECT_EQ(cluster.epochs().issued(), before + 2);
  cluster.create_checkpoint();
  EXPECT_EQ(cluster.epochs().issued(), before + 3);
}

}  // namespace
}  // namespace fides
