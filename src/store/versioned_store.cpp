#include "store/versioned_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace fides::store {

VersionChain::VersionChain(Bytes initial_value) {
  versions_.push_back(ItemVersion{kTimestampZero, std::move(initial_value)});
}

void VersionChain::append(const Timestamp& wts, Bytes value) {
  if (!(versions_.back().wts < wts)) {
    throw std::invalid_argument("VersionChain::append: non-monotonic timestamp");
  }
  versions_.push_back(ItemVersion{wts, std::move(value)});
}

std::optional<ItemVersion> VersionChain::at(const Timestamp& ts) const {
  // Last version with wts <= ts.
  const auto it = std::upper_bound(
      versions_.begin(), versions_.end(), ts,
      [](const Timestamp& t, const ItemVersion& v) { return t < v.wts; });
  if (it == versions_.begin()) return std::nullopt;
  return *std::prev(it);
}

std::size_t VersionChain::truncate_after(const Timestamp& ts) {
  const auto it = std::upper_bound(
      versions_.begin(), versions_.end(), ts,
      [](const Timestamp& t, const ItemVersion& v) { return t < v.wts; });
  // Keep at least the initial version.
  const auto first_removable = std::max(it, versions_.begin() + 1);
  const std::size_t dropped =
      static_cast<std::size_t>(versions_.end() - first_removable);
  versions_.erase(first_removable, versions_.end());
  return dropped;
}

bool VersionChain::corrupt_version_at(const Timestamp& ts, Bytes value) {
  const auto it = std::upper_bound(
      versions_.begin(), versions_.end(), ts,
      [](const Timestamp& t, const ItemVersion& v) { return t < v.wts; });
  if (it == versions_.begin()) return false;
  std::prev(it)->value = std::move(value);
  return true;
}

}  // namespace fides::store
