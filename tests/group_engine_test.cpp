// Engine-routed group commit (§4.6): multi-coordinator dispatch.
//
// The contract (ordserv/group_engine.hpp): the same batch stream produces a
// bit-identical sequenced stream — and identical per-server replicated logs —
// under the sequential lock-step runner AND the engine, at every scheduler
// (direct at any thread count, SimNet at any seed), pipeline depth, and
// speculation setting; crash/recovery of members and group coordinators
// converges on the same stream. Batches are minted once against a pristine
// cluster and replayed on fresh clusters (client keys are deterministic).
#include <gtest/gtest.h>

#include "ordserv/group_commit.hpp"
#include "ordserv/group_engine.hpp"

namespace fides::ordserv {
namespace {

ClusterConfig base_config() {
  ClusterConfig cfg;
  cfg.num_servers = 5;
  cfg.items_per_shard = 20;
  cfg.versioning = store::VersioningMode::kSingle;
  return cfg;
}

commit::SignedEndTxn rw_txn(Client& client, std::vector<ItemId> items,
                            const std::string& tag) {
  ClientTxn txn = client.begin();
  for (const ItemId item : items) {
    client.read(txn, item);
    client.write(txn, item, to_bytes(tag + "-" + std::to_string(item)));
  }
  return client.end(std::move(txn));
}

/// A deterministic batch stream with known group structure (5 servers; item
/// i lives on server i % 5): disjoint groups, overlapping groups, and a
/// cross-group batch that depends on both sides.
std::vector<std::vector<commit::SignedEndTxn>> mint_batches() {
  Cluster mint(base_config());
  Client& client = mint.make_client();
  std::vector<std::vector<commit::SignedEndTxn>> batches;
  batches.push_back({rw_txn(client, {0, 6}, "a")});    // servers {0,1}
  batches.push_back({rw_txn(client, {2, 8}, "b")});    // servers {2,3}, disjoint
  batches.push_back({rw_txn(client, {4}, "c")});       // server {4}, disjoint
  batches.push_back({rw_txn(client, {6, 12}, "d")});   // servers {1,2}: bridges
  batches.push_back({rw_txn(client, {0}, "e"),         // servers {0,4}
                     rw_txn(client, {9}, "f")});
  batches.push_back({rw_txn(client, {3, 14}, "g")});   // servers {3,4}
  return batches;
}

/// Everything the contract says must be schedule-independent.
struct StreamFingerprint {
  std::vector<Bytes> blocks;  ///< serialized sequenced blocks, height order
  std::vector<std::vector<std::uint64_t>> deps;
  std::vector<std::vector<ServerId>> groups;
  std::vector<std::size_t> log_sizes;          // per server
  std::vector<crypto::Digest> head_hashes;     // per server
  std::vector<crypto::Digest> merkle_roots;    // per server
  std::vector<std::string> faults;             // per round
  std::vector<unsigned char> cosigns;          // per round

  friend bool operator==(const StreamFingerprint&, const StreamFingerprint&) = default;
};

StreamFingerprint fingerprint(const Cluster& cluster, const Sequencer& seq,
                              const GroupRunResult& result) {
  StreamFingerprint fp;
  for (const SequencedBlock& e : seq.stream()) {
    fp.blocks.push_back(e.block.serialize());
    fp.deps.push_back(e.depends_on);
    fp.groups.push_back(e.group.members);
  }
  for (std::uint32_t i = 0; i < cluster.num_servers(); ++i) {
    const Server& s = cluster.server(ServerId{i});
    fp.log_sizes.push_back(s.log().size());
    fp.head_hashes.push_back(s.log().head_hash());
    fp.merkle_roots.push_back(s.shard().merkle_root());
  }
  for (const GroupRoundResult& r : result.rounds) {
    fp.faults.push_back(r.fault);
    fp.cosigns.push_back(r.cosign_valid ? 1 : 0);
  }
  return fp;
}

StreamFingerprint run_engine(ClusterConfig cfg,
                             const std::vector<std::vector<commit::SignedEndTxn>>& batches) {
  Cluster cluster(cfg);
  cluster.make_client();  // registers the deterministic client key
  Sequencer seq;
  const GroupRunResult result = cluster.run_group_blocks(seq, batches);
  for (const auto& refusal : result.delivery_refusals) {
    EXPECT_FALSE(refusal.has_value()) << refusal->reason;
  }
  return fingerprint(cluster, seq, result);
}

TEST(GroupEngine, MatchesLockStepRunnerBitForBit) {
  const auto batches = mint_batches();

  // Reference: the sequential lock-step runner.
  Cluster ref_cluster(base_config());
  ref_cluster.make_client();
  Sequencer ref_seq;
  GroupCommitRunner runner(ref_cluster, ref_seq);
  std::vector<GroupRoundResult> ref_rounds;
  for (const auto& batch : batches) ref_rounds.push_back(runner.run_group_block(batch));

  // Engine under the in-process scheduler.
  Cluster cluster(base_config());
  cluster.make_client();
  Sequencer seq;
  const GroupRunResult result = cluster.run_group_blocks(seq, batches);

  ASSERT_EQ(result.rounds.size(), ref_rounds.size());
  ASSERT_EQ(seq.size(), ref_seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq.stream()[i].block.serialize(), ref_seq.stream()[i].block.serialize())
        << "height " << i;
    EXPECT_EQ(seq.stream()[i].depends_on, ref_seq.stream()[i].depends_on);
    EXPECT_EQ(seq.stream()[i].group.members, ref_seq.stream()[i].group.members);
  }
  for (std::size_t i = 0; i < result.rounds.size(); ++i) {
    EXPECT_EQ(result.rounds[i].decision, ref_rounds[i].decision) << "round " << i;
    EXPECT_EQ(result.rounds[i].cosign_valid, ref_rounds[i].cosign_valid);
    EXPECT_EQ(result.rounds[i].global_height, ref_rounds[i].global_height);
    EXPECT_EQ(result.rounds[i].group.members, ref_rounds[i].group.members);
    EXPECT_EQ(result.rounds[i].fault, ref_rounds[i].fault);
  }
  // Engine delivery goes through the servers' real ledgers; every server
  // replicates the full stream.
  for (std::uint32_t i = 0; i < cluster.num_servers(); ++i) {
    EXPECT_EQ(cluster.server(ServerId{i}).log().size(), seq.size());
  }
}

TEST(GroupEngine, SchedulersDepthsSpeculationIdentical) {
  const auto batches = mint_batches();

  ClusterConfig d1 = base_config();
  d1.pipeline_depth = 1;
  const StreamFingerprint base = run_engine(d1, batches);
  ASSERT_EQ(base.blocks.size(), 6u);
  EXPECT_FALSE(base.blocks.empty());

  for (const std::uint32_t depth : {2u, 4u, 8u}) {
    for (const bool spec : {false, true}) {
      ClusterConfig cfg = base_config();
      cfg.pipeline_depth = depth;
      cfg.speculate = spec;
      EXPECT_TRUE(run_engine(cfg, batches) == base)
          << "direct depth " << depth << " spec " << spec;
    }
  }
  for (const std::uint32_t threads : {2u, 8u}) {
    ClusterConfig cfg = base_config();
    cfg.pipeline_depth = 4;
    cfg.num_threads = threads;
    EXPECT_TRUE(run_engine(cfg, batches) == base) << threads << " threads";
  }
  for (const std::uint64_t seed : {1ULL, 7ULL, 99ULL}) {
    for (const bool spec : {false, true}) {
      ClusterConfig cfg = base_config();
      cfg.network.mode = sim::NetworkMode::kSimulated;
      cfg.network.sim.seed = seed;
      cfg.pipeline_depth = 4;
      cfg.speculate = spec;
      EXPECT_TRUE(run_engine(cfg, batches) == base)
          << "simnet seed " << seed << " spec " << spec;
    }
  }
}

TEST(GroupEngine, CrossGroupDependenciesSerializeInStreamOrder) {
  const auto batches = mint_batches();
  ClusterConfig cfg = base_config();
  cfg.network.mode = sim::NetworkMode::kSimulated;
  cfg.pipeline_depth = 4;
  cfg.speculate = true;
  Cluster cluster(cfg);
  cluster.make_client();
  Sequencer seq;
  const GroupRunResult result = cluster.run_group_blocks(seq, batches);

  // The whole stream validates from genesis (chain, co-signs, dependencies).
  std::vector<SequencedBlock> stream(seq.stream().begin(), seq.stream().end());
  EXPECT_FALSE(validate_stream(stream, cluster.server_keys()).has_value());

  // Dependency-order oracle: every cross-group entry depends on the last
  // earlier entry touching any common item, and heights are stream order.
  std::unordered_map<ItemId, std::uint64_t> last_touch;
  for (const SequencedBlock& e : stream) {
    for (const auto& t : e.block.txns) {
      for (const ItemId item : t.rw.touched_items()) {
        const auto it = last_touch.find(item);
        if (it != last_touch.end()) {
          EXPECT_NE(std::find(e.depends_on.begin(), e.depends_on.end(), it->second),
                    e.depends_on.end())
              << "height " << e.block.height << " missing dependency on "
              << it->second;
        }
      }
    }
    for (const auto& t : e.block.txns) {
      for (const ItemId item : t.rw.touched_items()) last_touch[item] = e.block.height;
    }
  }
  // Batch 3 ({6,12}: servers 1,2) bridges batches 0 and 1's groups.
  ASSERT_GE(seq.size(), 4u);
  EXPECT_EQ(result.rounds[3].group.members,
            (std::vector<ServerId>{ServerId{1}, ServerId{2}}));
  EXPECT_FALSE(seq.stream()[3].depends_on.empty());
}

TEST(GroupEngine, MemberCrashRecoversToIdenticalStream) {
  const auto batches = mint_batches();
  const StreamFingerprint base = run_engine(base_config(), batches);

  for (const std::uint32_t victim : {1u, 2u}) {
    ClusterConfig cfg = base_config();
    cfg.network.mode = sim::NetworkMode::kSimulated;
    cfg.pipeline_depth = 4;
    CrashFault cf;
    cf.server = victim;
    cf.at_us = 150;  // mid-run on the virtual clock
    cf.downtime_us = 2000;
    cfg.crashes.push_back(cf);
    EXPECT_TRUE(run_engine(cfg, batches) == base) << "crash victim S" << victim;
  }
}

TEST(GroupEngine, GroupCoordinatorCrashRestartsRoundDeterministically) {
  const auto batches = mint_batches();
  const StreamFingerprint base = run_engine(base_config(), batches);

  // Server 0 coordinates the {0,1} and {0,4} groups; server 3 coordinates
  // {3,4}. Crashing either mid-run must replay to the same stream.
  for (const std::uint32_t victim : {0u, 3u}) {
    for (const bool spec : {false, true}) {
      ClusterConfig cfg = base_config();
      cfg.network.mode = sim::NetworkMode::kSimulated;
      cfg.pipeline_depth = 4;
      cfg.speculate = spec;
      CrashFault cf;
      cf.server = victim;
      cf.at_us = 120;
      cf.downtime_us = 3000;
      cfg.crashes.push_back(cf);
      EXPECT_TRUE(run_engine(cfg, batches) == base)
          << "coordinator S" << victim << " spec " << spec;
    }
  }
}

TEST(GroupEngine, DurableLogsReplayGroupCommitsAfterCrash) {
  // Crash → recover mid-run, then inspect the recovered server directly: its
  // ledger must be rebuilt from the durable round log and match the stream.
  const auto batches = mint_batches();
  ClusterConfig cfg = base_config();
  cfg.network.mode = sim::NetworkMode::kSimulated;
  CrashFault cf;
  cf.server = 1;
  cf.at_us = 200;
  cf.downtime_us = 1500;
  cfg.crashes.push_back(cf);
  Cluster cluster(cfg);
  cluster.make_client();
  Sequencer seq;
  cluster.run_group_blocks(seq, batches);

  const Server& recovered = cluster.server(ServerId{1});
  ASSERT_EQ(recovered.log().size(), seq.size());
  for (std::size_t h = 0; h < seq.size(); ++h) {
    EXPECT_EQ(recovered.log().blocks()[h].serialize(), seq.stream()[h].block.serialize())
        << "height " << h;
  }
}

TEST(GroupEngine, EmptyBatchRefusedWithoutEpochOrTraffic) {
  Cluster mint(base_config());
  Client& client = mint.make_client();
  std::vector<std::vector<commit::SignedEndTxn>> batches;
  batches.push_back({});  // refused at submission
  batches.push_back({rw_txn(client, {0, 6}, "a")});

  Cluster cluster(base_config());
  cluster.make_client();
  Sequencer seq;
  const GroupRunResult result = cluster.run_group_blocks(seq, batches);
  ASSERT_EQ(result.rounds.size(), 2u);
  EXPECT_EQ(result.rounds[0].fault, "empty batch refused at submission");
  EXPECT_EQ(result.rounds[0].decision, ledger::Decision::kAbort);
  EXPECT_EQ(result.rounds[1].fault, "");
  EXPECT_EQ(result.rounds[1].decision, ledger::Decision::kCommit);
  // The refused batch consumed nothing: one sequenced entry, one epoch.
  EXPECT_EQ(seq.size(), 1u);
  EXPECT_EQ(seq.epochs().issued(), 1u);
  EXPECT_EQ(result.rounds[1].global_height, 0u);
}

TEST(GroupEngine, ByzantineCosignerRefusedAndLaterGroupsProceed) {
  Cluster mint(base_config());
  Client& client = mint.make_client();
  std::vector<std::vector<commit::SignedEndTxn>> batches;
  batches.push_back({rw_txn(client, {0, 6}, "a")});  // servers {0,1}: sabotaged
  batches.push_back({rw_txn(client, {2, 8}, "b")});  // servers {2,3}: honest

  Cluster cluster(base_config());
  cluster.make_client();
  cluster.server(ServerId{1}).faults().cohort.corrupt_sch_response = true;
  Sequencer seq;
  const GroupRunResult result = cluster.run_group_blocks(seq, batches);

  EXPECT_FALSE(result.rounds[0].cosign_valid);
  EXPECT_EQ(result.rounds[0].fault, "co-sign did not verify");
  EXPECT_TRUE(result.rounds[1].cosign_valid);
  // Only the honest round was sequenced — at height 0, chain intact.
  ASSERT_EQ(seq.size(), 1u);
  EXPECT_EQ(result.rounds[1].global_height, 0u);
  for (std::uint32_t i = 0; i < cluster.num_servers(); ++i) {
    EXPECT_EQ(cluster.server(ServerId{i}).log().size(), 1u);
  }
}

}  // namespace
}  // namespace fides::ordserv
