// MUST NOT COMPILE under clang -Werror=thread-safety: reads a GUARDED_BY
// field without holding its mutex. The surrounding CMake harness asserts
// that this translation unit is rejected; if it ever compiles, the analysis
// has been silently disabled (wrong flags, annotations macroed away, ...).
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace {

class Counter {
 public:
  int get_unlocked() const {
    return n_;  // <-- reading n_ without mu_: -Wthread-safety error
  }

 private:
  mutable fides::common::Mutex mu_;
  int n_ GUARDED_BY(mu_){0};
};

}  // namespace

int main() {
  Counter c;
  return c.get_unlocked();
}
