#include "workload/driver.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <stdexcept>

namespace fides::workload {

namespace {

void fill_percentiles(ExperimentResult& result) {
  result.p50_ms = result.latency_hist.percentile(50.0);
  result.p99_ms = result.latency_hist.percentile(99.0);
  result.p999_ms = result.latency_hist.percentile(99.9);
  result.max_ms = result.latency_hist.max();
}

/// Open-loop measurement: clients are SimNet nodes submitting on the
/// configured arrival schedule. The data path (reads/buffered writes) still
/// executes up front — what traverses the simulated network is the commit
/// request / response choreography, which is where queueing happens.
ExperimentResult run_open_loop_experiment(const ExperimentConfig& config) {
  const auto wall_start = std::chrono::steady_clock::now();

  Cluster cluster(config.cluster);
  const std::uint32_t m = std::max<std::uint32_t>(1, config.arrival.num_clients);
  std::vector<Client*> clients;
  clients.reserve(m);
  for (std::uint32_t i = 0; i < m; ++i) clients.push_back(&cluster.make_client());

  const std::uint64_t total_items =
      static_cast<std::uint64_t>(config.cluster.num_servers) *
      config.cluster.items_per_shard;
  YcsbWorkload workload(config.workload, total_items, config.cluster.seed);

  const std::vector<double> arrivals = arrival_times_us(config.arrival, config.total_txns);

  // Generate in arrival order, round-robin over the client population; the
  // batcher then packs blocks exactly as the closed-loop driver would.
  commit::BatchBuilder batcher(config.txns_per_block);
  std::vector<OpenLoopTxn> txns(config.total_txns);
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::size_t> index_of;
  for (std::size_t i = 0; i < config.total_txns; ++i) {
    if (i % config.txns_per_block == 0) workload.begin_batch();
    Client& client = *clients[i % m];
    commit::SignedEndTxn req = workload.run_transaction(client);
    index_of[{req.request.txn.id.client, req.request.txn.id.seq}] = i;
    txns[i] = OpenLoopTxn{client.id().value, arrivals[i], 0};
    batcher.enqueue(std::move(req));
  }
  std::vector<std::vector<commit::SignedEndTxn>> batches;
  while (!batcher.empty()) batches.push_back(batcher.next_batch());
  for (std::size_t k = 0; k < batches.size(); ++k) {
    for (const commit::SignedEndTxn& req : batches[k]) {
      txns.at(index_of.at({req.request.txn.id.client, req.request.txn.id.seq})).round = k;
    }
  }

  const OpenLoopOutcome run =
      cluster.run_open_loop(std::move(batches), std::move(txns), config.client_model);

  ExperimentResult result;
  result.open_loop = true;
  result.offered_tps = config.arrival.rate_tps;
  result.threads = cluster.round_threads();
  result.pipeline_depth = std::max<std::uint32_t>(1, config.cluster.pipeline_depth);

  double total_latency_us = 0;
  double total_measured_us = 0;
  double total_mht_us = 0;
  for (const RoundMetrics& metrics : run.pipeline.rounds) {
    ++result.blocks;
    total_latency_us += metrics.modeled_latency_us;
    total_measured_us += metrics.measured_latency_us;
    total_mht_us += metrics.mht_us;
    if (metrics.decision == ledger::Decision::kCommit) {
      result.committed_txns += metrics.txns_in_block;
    } else {
      result.aborted_txns += metrics.txns_in_block;
    }
  }
  if (result.blocks > 0) {
    result.avg_latency_ms = total_latency_us / 1000.0 / static_cast<double>(result.blocks);
    result.avg_measured_ms =
        total_measured_us / 1000.0 / static_cast<double>(result.blocks);
    result.avg_mht_ms = total_mht_us / 1000.0 / static_cast<double>(result.blocks);
  }

  for (const double us : run.latency_us) {
    if (us >= 0) result.latency_hist.record(us / 1000.0);
  }
  fill_percentiles(result);
  result.span_ms = run.span_us / 1000.0;
  result.client_sends = run.client_sends;
  result.client_retries = run.client_retries;
  result.dup_responses = run.dup_responses;
  // Open-loop throughput is committed work over the virtual span of the
  // whole run (arrival of the first txn to the last response) — a pure
  // virtual-time quantity, byte-reproducible from the seed.
  if (run.span_us > 0) {
    result.throughput_tps =
        static_cast<double>(result.committed_txns) / (run.span_us / 1e6);
  }
  if (run.pipeline.wall_us > 0) {
    result.measured_throughput_tps =
        static_cast<double>(result.committed_txns) / (run.pipeline.wall_us / 1e6);
  }
  result.net = cluster.transport().stats();
  result.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  return result;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  // Open-loop shapes need clients on the simulated network; in direct mode
  // the arrival/client knobs are ignored outright so direct-mode results
  // stay bit-identical whatever those knobs say.
  if (config.arrival.process != ArrivalProcess::kClosed &&
      config.cluster.network.mode == sim::NetworkMode::kSimulated) {
    return run_open_loop_experiment(config);
  }

  const auto wall_start = std::chrono::steady_clock::now();

  Cluster cluster(config.cluster);
  Client& client = cluster.make_client();
  const std::uint64_t total_items =
      static_cast<std::uint64_t>(config.cluster.num_servers) *
      config.cluster.items_per_shard;
  YcsbWorkload workload(config.workload, total_items, config.cluster.seed);

  ExperimentResult result;
  result.threads = cluster.round_threads();
  result.pipeline_depth = std::max<std::uint32_t>(1, config.cluster.pipeline_depth);
  double total_latency_us = 0;
  double total_measured_us = 0;
  double total_commit_wall_us = 0;
  double total_mht_us = 0;

  // Execute one window's transactions against the data path, then terminate
  // them together (§4.6 batching). The window spans pipeline_depth blocks so
  // a deeper pipeline always has its next block ready.
  const std::size_t window = config.txns_per_block * result.pipeline_depth;
  std::size_t remaining = config.total_txns;
  commit::BatchBuilder batcher(config.txns_per_block);
  while (remaining > 0) {
    workload.begin_batch();
    const std::size_t n = std::min(window, remaining);
    for (std::size_t i = 0; i < n; ++i) {
      batcher.enqueue(workload.run_transaction(client));
    }
    remaining -= n;

    std::vector<std::vector<commit::SignedEndTxn>> batches;
    while (!batcher.empty()) {
      batches.push_back(batcher.next_batch());
    }
    const PipelineResult run = cluster.run_blocks(std::move(batches));
    total_commit_wall_us += run.wall_us;
    for (const RoundMetrics& metrics : run.rounds) {
      ++result.blocks;
      total_latency_us += metrics.modeled_latency_us;
      total_measured_us += metrics.measured_latency_us;
      total_mht_us += metrics.mht_us;
      // Closed loop: every transaction in the block experienced the block's
      // modeled latency.
      for (std::size_t t = 0; t < metrics.txns_in_block; ++t) {
        result.latency_hist.record(metrics.modeled_latency_us / 1000.0);
      }
      if (metrics.decision == ledger::Decision::kCommit) {
        result.committed_txns += metrics.txns_in_block;
      } else {
        result.aborted_txns += metrics.txns_in_block;
      }
    }
  }

  if (result.blocks > 0) {
    result.avg_latency_ms = total_latency_us / 1000.0 / static_cast<double>(result.blocks);
    result.avg_measured_ms =
        total_measured_us / 1000.0 / static_cast<double>(result.blocks);
    result.avg_mht_ms = total_mht_us / 1000.0 / static_cast<double>(result.blocks);
  }
  fill_percentiles(result);
  if (total_latency_us > 0) {
    result.throughput_tps =
        static_cast<double>(result.committed_txns) / (total_latency_us / 1e6);
  }
  if (total_commit_wall_us > 0) {
    result.measured_throughput_tps =
        static_cast<double>(result.committed_txns) / (total_commit_wall_us / 1e6);
  }
  result.net = cluster.transport().stats();
  result.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  return result;
}

ExperimentResult run_averaged(ExperimentConfig config,
                              std::span<const std::uint64_t> seeds) {
  ExperimentResult avg;
  for (const std::uint64_t seed : seeds) {
    config.cluster.seed = seed;
    const ExperimentResult r = run_experiment(config);
    avg.committed_txns += r.committed_txns;
    avg.aborted_txns += r.aborted_txns;
    avg.blocks += r.blocks;
    avg.avg_latency_ms += r.avg_latency_ms;
    avg.throughput_tps += r.throughput_tps;
    avg.avg_mht_ms += r.avg_mht_ms;
    avg.avg_measured_ms += r.avg_measured_ms;
    avg.measured_throughput_tps += r.measured_throughput_tps;
    avg.threads = r.threads;
    avg.pipeline_depth = r.pipeline_depth;
    avg.wall_seconds += r.wall_seconds;
    avg.net.messages += r.net.messages;
    avg.net.bytes += r.net.bytes;
    avg.net.signatures_created += r.net.signatures_created;
    avg.net.signatures_verified += r.net.signatures_verified;
    avg.latency_hist.merge(r.latency_hist);
    avg.open_loop = r.open_loop;
    avg.offered_tps = r.offered_tps;
    avg.span_ms += r.span_ms;
    avg.client_sends += r.client_sends;
    avg.client_retries += r.client_retries;
    avg.dup_responses += r.dup_responses;
  }
  const double n = static_cast<double>(seeds.size());
  if (n > 0) {
    avg.avg_latency_ms /= n;
    avg.throughput_tps /= n;
    avg.avg_mht_ms /= n;
    avg.avg_measured_ms /= n;
    avg.measured_throughput_tps /= n;
    avg.span_ms /= n;
  }
  // Percentiles come from the pooled (exactly merged) distribution, not an
  // average of per-seed percentiles.
  fill_percentiles(avg);
  return avg;
}

}  // namespace fides::workload
