#include "txn/occ.hpp"

namespace fides::txn {

void apply_committed(store::Shard& shard, const Transaction& txn) {
  for (const auto& w : txn.rw.writes) {
    if (!shard.contains(w.id)) continue;
    shard.apply_write(w.id, w.new_value, txn.commit_ts);
    shard.update_read_ts(w.id, txn.commit_ts);
  }
  for (const auto& r : txn.rw.reads) {
    if (!shard.contains(r.id)) continue;
    shard.update_read_ts(r.id, txn.commit_ts);
  }
}

}  // namespace fides::txn
