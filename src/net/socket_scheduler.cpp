#include "net/socket_scheduler.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "net/socket.hpp"

namespace fides::net {

namespace {

using Clock = std::chrono::steady_clock;

double since_s(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

SocketScheduler::SocketScheduler(Cluster& cluster, SocketOptions opts)
    : cluster_(&cluster),
      opts_(std::move(opts)),
      peer_crashed_(cluster.num_servers(), 0) {
  if (opts_.addrs.size() != cluster.num_servers()) {
    throw std::runtime_error("socket scheduler: addrs must list one address per server");
  }
  if (opts_.self >= cluster.num_servers()) {
    throw std::runtime_error("socket scheduler: self is not a server of this cluster");
  }
  const ParsedAddr parsed = parse_addr(opts_.addrs[opts_.self]);
  if (parsed.is_unix) listen_path_ = parsed.path;
  listen_fd_ = listen_on(opts_.addrs[opts_.self]);
  poller_.add(listen_fd_, [this](int, short) { handle_accept(); });
  if (opts_.self != 0) {
    // Dial the coordinator now and introduce ourselves: on a first boot
    // this is plain registration; after a restart it is the reconnect the
    // coordinator maps to a kRecover event.
    conn_for_server(0);
  }
}

SocketScheduler::~SocketScheduler() {
  for (const auto& conn : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!listen_path_.empty()) ::unlink(listen_path_.c_str());
}

// --- Scheduler ---------------------------------------------------------------

void SocketScheduler::run(engine::Dispatcher& dispatcher) {
  dispatcher_ = &dispatcher;
  auto last_progress = Clock::now();
  for (;;) {
    if (drain_local()) last_progress = Clock::now();
    if (done_ && done_()) {
      finished_ = true;
      dispatcher_ = nullptr;
      return;
    }
    if (shutdown_ || coordinator_lost_) {
      dispatcher_ = nullptr;
      return;
    }
    if (poller_.poll_once(50) > 0) {
      last_progress = Clock::now();
      continue;
    }
    if (since_s(last_progress) > opts_.stall_timeout_s) {
      dispatcher_ = nullptr;
      throw std::runtime_error(
          "socket scheduler stalled: no frames or deliveries for " +
          std::to_string(opts_.stall_timeout_s) + "s (server " +
          std::to_string(opts_.self) + ")");
    }
  }
}

void SocketScheduler::post(NodeId dst, std::function<void()> fn) {
  // Node-local control actions (round starts on the coordinator) execute
  // only in the hosting process; any other process drops them — its replica
  // of that node is inert by design.
  if (hosted(dst)) fn();
}

void SocketScheduler::crash_node(NodeId node) {
  if (node.kind != NodeId::Kind::kServer || node.id >= peer_crashed_.size()) return;
  if (node.id == opts_.self) {
    if (opts_.die_on_crash) {
      // A real crash: no destructors, no buffered-write flushing. The
      // durable round log is already on disk (append() flushes every
      // record), which is exactly what the restarted process rejoins from.
      std::fflush(stderr);
      std::_Exit(opts_.crash_exit_code);
    }
    return;  // the hosting process cannot simulate its own death
  }
  // A remote peer declared dead (integrity-failed recovery): drop its
  // connection and everything queued for it.
  peer_crashed_[node.id] = 1;
  const auto it = conn_of_server_.find(node.id);
  if (it != conn_of_server_.end()) drop_conn(*it->second, "declared dead");
}

void SocketScheduler::schedule_recover(NodeId node, double delay_us) {
  (void)node;
  (void)delay_us;  // recovery is the peer actually reconnecting
}

void SocketScheduler::schedule_failure_probe(NodeId node, double delay_us) {
  (void)node;
  (void)delay_us;  // coordinator-death termination over sockets: v1 non-goal
}

void SocketScheduler::notify_applied(std::uint32_t server, std::uint64_t epoch) {
  // Only a cohort process reports to the coordinator; the coordinator's own
  // completions are already in its pipeline bookkeeping, and acknowledging
  // a remote ACK here would loop (the pipeline calls this hook for *every*
  // first-time completion, including ones learned from kPeerApplied).
  if (opts_.self == 0 || server != opts_.self) return;
  Conn* conn = conn_for_server(0);
  if (conn != nullptr) queue_frame(*conn, encode_applied(server, epoch));
}

std::vector<PeerDigest> SocketScheduler::finish(double timeout_s) {
  finished_ = true;
  digests_.clear();
  std::size_t expected = 0;
  for (std::uint32_t s = 0; s < peer_crashed_.size(); ++s) {
    if (s == opts_.self || peer_crashed_[s] != 0) continue;
    Conn* conn = conn_for_server(s);
    if (conn == nullptr) continue;
    queue_frame(*conn, encode_digest_query(s));
    ++expected;
  }
  const auto deadline = Clock::now() + std::chrono::duration<double>(timeout_s);
  while (digests_.size() < expected && Clock::now() < deadline) {
    poller_.poll_once(50);
  }
  // Shutdown broadcast, then drain everything buffered before closing.
  std::vector<std::uint32_t> peers;
  peers.reserve(conn_of_server_.size());
  for (const auto& [s, conn] : conn_of_server_) peers.push_back(s);
  for (const std::uint32_t s : peers) {
    const auto it = conn_of_server_.find(s);
    if (it != conn_of_server_.end()) queue_frame(*it->second, encode_shutdown());
  }
  flush_all_blocking(5.0);
  std::sort(digests_.begin(), digests_.end(),
            [](const PeerDigest& a, const PeerDigest& b) { return a.server < b.server; });
  return digests_;
}

// --- Outbox ------------------------------------------------------------------

void SocketScheduler::send(NodeId src, NodeId dst, Envelope env) {
  send_impl(src, dst, std::move(env), /*replay=*/false);
}

void SocketScheduler::send_replay(NodeId src, NodeId dst, Envelope env) {
  send_impl(src, dst, std::move(env), /*replay=*/true);
}

void SocketScheduler::send_impl(NodeId src, NodeId dst, Envelope env, bool replay) {
  if (hosted(dst)) {
    LocalEvent ev;
    ev.delivery = Delivery{src, dst, std::move(env), replay};
    queue_.push_back(std::move(ev));
    return;
  }
  if (dst.kind != NodeId::Kind::kServer) return;  // clients live with the coordinator
  if (dst.id >= peer_crashed_.size() || peer_crashed_[dst.id] != 0) {
    return;  // deliveries to a dead node are lost — the SimNet crash semantics
  }
  Conn* conn = conn_for_server(dst.id);
  if (conn != nullptr) queue_frame(*conn, encode_envelope(src, dst, replay, env));
}

// --- Connections -------------------------------------------------------------

SocketScheduler::Conn* SocketScheduler::conn_for_server(std::uint32_t server) {
  const auto it = conn_of_server_.find(server);
  if (it != conn_of_server_.end()) return it->second;
  if (server >= opts_.addrs.size()) return nullptr;
  // Dial-on-demand with retry: the peer process provisions the identical
  // cluster before it listens, so "connection refused" usually just means
  // "still provisioning".
  const auto deadline =
      Clock::now() + std::chrono::duration<double>(opts_.connect_timeout_s);
  for (;;) {
    const int fd = dial_once(opts_.addrs[server]);
    if (fd >= 0) {
      set_nonblocking(fd);
      Conn* conn = adopt_fd(fd, static_cast<std::int64_t>(server));
      conn_of_server_[server] = conn;
      queue_frame(*conn, encode_hello(NodeId::server(ServerId{opts_.self})));
      return conn;
    }
    if (Clock::now() >= deadline) {
      throw std::runtime_error("socket scheduler: could not connect to server " +
                               std::to_string(server) + " at " + opts_.addrs[server]);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

SocketScheduler::Conn* SocketScheduler::adopt_fd(int fd, std::int64_t peer_server) {
  auto owned = std::make_unique<Conn>();
  owned->fd = fd;
  owned->peer_server = peer_server;
  Conn* conn = owned.get();
  conns_.push_back(std::move(owned));
  poller_.add(fd, [this, conn](int, short revents) { handle_readable(*conn, revents); });
  return conn;
}

void SocketScheduler::queue_frame(Conn& conn, const Bytes& frame) {
  conn.wbuf.insert(conn.wbuf.end(), frame.begin(), frame.end());
  flush_conn(conn);
  // The conn may have been dropped on a write error; callers must not touch
  // it after queue_frame.
}

bool SocketScheduler::flush_conn(Conn& conn) {
  while (conn.wpos < conn.wbuf.size()) {
    const ssize_t n = ::write(conn.fd, conn.wbuf.data() + conn.wpos,
                              conn.wbuf.size() - conn.wpos);
    if (n > 0) {
      conn.wpos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      poller_.set_want_write(conn.fd, true);
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    drop_conn(conn, "write error");
    return false;
  }
  conn.wbuf.clear();
  conn.wpos = 0;
  poller_.set_want_write(conn.fd, false);
  return true;
}

void SocketScheduler::handle_accept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained
    }
    adopt_fd(fd, /*peer_server=*/-1);  // identity arrives with the HELLO frame
  }
}

void SocketScheduler::handle_readable(Conn& conn, short revents) {
  if ((revents & POLLOUT) != 0) {
    if (!flush_conn(conn)) return;  // dropped on write error
  }
  if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) return;
  std::uint8_t buf[16384];
  for (;;) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.reader.feed(BytesView(buf, static_cast<std::size_t>(n)));
      for (;;) {
        std::optional<Bytes> payload;
        try {
          payload = conn.reader.next();
        } catch (const DecodeError&) {
          // An oversized length prefix desynchronizes the stream for good:
          // the connection is unusable, not just this frame.
          drop_conn(conn, "oversized frame");
          return;
        }
        if (!payload.has_value()) break;
        try {
          handle_frame(conn, decode_frame(*payload));
        } catch (const DecodeError&) {
          // A malformed frame is dropped; later frames are still delimited
          // correctly by the length prefixes, so the connection survives.
        }
      }
      continue;
    }
    if (n == 0) {
      drop_conn(conn, "peer closed");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    drop_conn(conn, "read error");
    return;
  }
}

void SocketScheduler::handle_frame(Conn& conn, const Frame& frame) {
  switch (frame.kind) {
    case FrameKind::kHello: {
      if (frame.hello_node.kind != NodeId::Kind::kServer ||
          frame.hello_node.id >= peer_crashed_.size()) {
        return;
      }
      const std::uint32_t s = frame.hello_node.id;
      conn.peer_server = static_cast<std::int64_t>(s);
      conn_of_server_[s] = &conn;  // a reconnect supersedes any stale mapping
      if (peer_crashed_[s] != 0) {
        peer_crashed_[s] = 0;
        if (!finished_ && !shutdown_) {
          LocalEvent ev;
          ev.is_control = true;
          ev.control.kind = engine::ControlEvent::Kind::kRecover;
          ev.control.node = NodeId::server(ServerId{s});
          queue_.push_back(std::move(ev));
        }
      }
      return;
    }
    case FrameKind::kEnvelope: {
      if (finished_ || !hosted(frame.dst)) return;  // late or misrouted
      LocalEvent ev;
      ev.delivery = Delivery{frame.src, frame.dst, frame.envelope, frame.replay};
      queue_.push_back(std::move(ev));
      return;
    }
    case FrameKind::kApplied: {
      // Cohort → coordinator only; bounds-checked here, epoch-checked by
      // the pipeline (both are untrusted wire input).
      if (finished_ || opts_.self != 0 || frame.server >= peer_crashed_.size()) return;
      LocalEvent ev;
      ev.is_control = true;
      ev.control.kind = engine::ControlEvent::Kind::kPeerApplied;
      ev.control.node = NodeId::server(ServerId{frame.server});
      ev.control.tag = frame.epoch;
      queue_.push_back(std::move(ev));
      return;
    }
    case FrameKind::kShutdown:
      shutdown_ = true;
      return;
    case FrameKind::kDigestQuery: {
      if (frame.server != opts_.self || cluster_->is_crashed(ServerId{opts_.self})) {
        return;
      }
      const Server& server = cluster_->server(ServerId{opts_.self});
      PeerDigest digest;
      digest.server = opts_.self;
      digest.log_height = server.log().size();
      digest.log_head = server.log().head_hash();
      digest.shard_root = server.shard().merkle_root();
      queue_frame(conn, encode_digest_reply(digest));
      return;
    }
    case FrameKind::kDigestReply: {
      for (PeerDigest& d : digests_) {
        if (d.server == frame.digest.server) {
          d = frame.digest;
          return;
        }
      }
      digests_.push_back(frame.digest);
      return;
    }
  }
}

void SocketScheduler::drop_conn(Conn& conn, const char* why) {
  const std::int64_t peer = conn.peer_server;
  poller_.remove(conn.fd);
  ::close(conn.fd);
  conn.fd = -1;
  if (peer >= 0) {
    const auto it = conn_of_server_.find(static_cast<std::uint32_t>(peer));
    if (it != conn_of_server_.end() && it->second == &conn) conn_of_server_.erase(it);
  }
  for (auto it = conns_.begin(); it != conns_.end(); ++it) {
    if (it->get() == &conn) {
      conns_.erase(it);  // destroys conn — nothing below may touch it
      break;
    }
  }
  if (peer < 0 || finished_ || shutdown_) return;
  if (opts_.self == 0) {
    // The coordinator maps a lost peer onto the engine's crash model: its
    // local replica is destroyed (volatile state lost) and the round log —
    // shared on disk — is what a reconnecting peer recovers from.
    const auto s = static_cast<std::uint32_t>(peer);
    if (peer_crashed_[s] == 0) {
      peer_crashed_[s] = 1;
      std::fprintf(stderr, "[socket:0] server %u connection lost (%s); treating as crash\n",
                   s, why);
      LocalEvent ev;
      ev.is_control = true;
      ev.control.kind = engine::ControlEvent::Kind::kCrash;
      ev.control.node = NodeId::server(ServerId{s});
      queue_.push_back(std::move(ev));
    }
  } else if (peer == 0) {
    std::fprintf(stderr, "[socket:%u] coordinator connection lost (%s); exiting run loop\n",
                 opts_.self, why);
    coordinator_lost_ = true;
  }
}

bool SocketScheduler::drain_local() {
  bool worked = false;
  while (!queue_.empty() && dispatcher_ != nullptr) {
    LocalEvent ev = std::move(queue_.front());
    queue_.pop_front();
    worked = true;
    if (ev.is_control) {
      dispatcher_->on_control(ev.control, *this);
    } else if (ev.delivery.replay) {
      dispatcher_->dispatch_replay(ev.delivery.src, ev.delivery.dst, ev.delivery.env,
                                   *this);
    } else {
      dispatcher_->dispatch(ev.delivery.src, ev.delivery.dst, ev.delivery.env, *this);
    }
  }
  return worked;
}

void SocketScheduler::flush_all_blocking(double timeout_s) {
  const auto deadline = Clock::now() + std::chrono::duration<double>(timeout_s);
  for (;;) {
    bool pending = false;
    for (std::size_t i = 0; i < conns_.size();) {
      Conn* conn = conns_[i].get();
      const std::size_t before = conns_.size();
      if (conn->wpos < conn->wbuf.size()) flush_conn(*conn);
      if (conns_.size() != before) continue;  // dropped: the index now names the next conn
      if (conn->wpos < conn->wbuf.size()) pending = true;
      ++i;
    }
    if (!pending || Clock::now() >= deadline) return;
    poller_.poll_once(20);
  }
}

}  // namespace fides::net
