#include "crypto/secp256k1.hpp"

#include <stdexcept>

namespace fides::crypto {

namespace {

// secp256k1 domain parameters (SEC 2), little-endian 64-bit limbs.
constexpr U256 kP = U256::from_limbs(0xFFFFFFFEFFFFFC2FULL, 0xFFFFFFFFFFFFFFFFULL,
                                     0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL);
constexpr U256 kN = U256::from_limbs(0xBFD25E8CD0364141ULL, 0xBAAEDCE6AF48A03BULL,
                                     0xFFFFFFFFFFFFFFFEULL, 0xFFFFFFFFFFFFFFFFULL);
constexpr U256 kGx = U256::from_limbs(0x59F2815B16F81798ULL, 0x029BFCDB2DCE28D9ULL,
                                      0x55A06295CE870B07ULL, 0x79BE667EF9DCBBACULL);
constexpr U256 kGy = U256::from_limbs(0x9C47D08FFB10D4B8ULL, 0xFD17B448A6855419ULL,
                                      0x5DA4FBFC0E1108A8ULL, 0x483ADA7726A3C465ULL);

/// Width-5 wNAF recoding: k == Σ out[i] * 2^i with out[i] odd in [-15, 15]
/// or zero, and no two adjacent nonzero digits. At most 257 digits.
std::vector<std::int8_t> wnaf5(const U256& k) {
  std::vector<std::int8_t> out;
  out.reserve(257);
  U256 d = k;
  while (!d.is_zero()) {
    std::int8_t digit = 0;
    if (d.w[0] & 1) {
      const int val = static_cast<int>(d.w[0] & 31);
      digit = static_cast<std::int8_t>(val > 16 ? val - 32 : val);
      if (digit > 0) {
        u256_sub(d, d, U256(static_cast<std::uint64_t>(digit)));
      } else {
        u256_add(d, d, U256(static_cast<std::uint64_t>(-digit)));
      }
    }
    out.push_back(digit);
    d.w[0] = (d.w[0] >> 1) | (d.w[1] << 63);
    d.w[1] = (d.w[1] >> 1) | (d.w[2] << 63);
    d.w[2] = (d.w[2] >> 1) | (d.w[3] << 63);
    d.w[3] >>= 1;
  }
  return out;
}

}  // namespace

Bytes AffinePoint::serialize() const {
  if (infinity) return Bytes{0x00};
  Bytes out;
  out.reserve(65);
  out.push_back(0x04);  // SEC1 uncompressed marker
  const auto xb = x.to_bytes_be();
  const auto yb = y.to_bytes_be();
  out.insert(out.end(), xb.begin(), xb.end());
  out.insert(out.end(), yb.begin(), yb.end());
  return out;
}

std::optional<AffinePoint> AffinePoint::deserialize(BytesView b) {
  if (b.size() == 1 && b[0] == 0x00) {
    AffinePoint a;
    a.infinity = true;
    return a;
  }
  if (b.size() != 65 || b[0] != 0x04) return std::nullopt;
  AffinePoint a;
  a.x = U256::from_bytes_be(b.subspan(1, 32));
  a.y = U256::from_bytes_be(b.subspan(33, 32));
  if (!Curve::instance().on_curve(a)) return std::nullopt;
  return a;
}

const Curve& Curve::instance() {
  static const Curve curve;
  return curve;
}

Curve::Curve() : fp_(kP), fn_(kN), b7_(fp_.to_mont(U256(7))) {
  g_.x = fp_.to_mont(kGx);
  g_.y = fp_.to_mont(kGy);
  g_.z = fp_.one();

  g_table_.resize(64);
  Point window_base = g_;  // 16^i * G
  for (int i = 0; i < 64; ++i) {
    g_table_[i][0] = window_base;
    for (int j = 1; j < 15; ++j) {
      g_table_[i][j] = add(g_table_[i][j - 1], window_base);
    }
    for (int d = 0; d < 4; ++d) window_base = dbl(window_base);
  }
  // One inversion normalizes the whole table; every fixed-base lookup can
  // then go through the cheaper mixed addition.
  std::vector<Point> flat;
  flat.reserve(64 * 15);
  for (const auto& row : g_table_) flat.insert(flat.end(), row.begin(), row.end());
  batch_normalize(flat);
  for (int i = 0; i < 64; ++i) {
    for (int j = 0; j < 15; ++j) g_table_[i][j] = flat[static_cast<std::size_t>(i) * 15 + j];
  }
}

Point Curve::infinity() const {
  Point p;
  p.x = fp_.one();
  p.y = fp_.one();
  p.z = fp_.zero();
  return p;
}

Point Curve::negate(const Point& p) const {
  Point r = p;
  r.y = fp_.neg(p.y);
  return r;
}

Point Curve::dbl(const Point& p) const {
  // dbl-2009-l formulas (a = 0 special case).
  if (p.is_infinity() || fp_.is_zero(p.y)) return infinity();
  const auto& f = fp_;
  const Fe a = f.sqr(p.x);                    // XX
  const Fe b = f.sqr(p.y);                    // YY
  const Fe c = f.sqr(b);                      // YYYY
  Fe d = f.sub(f.sqr(f.add(p.x, b)), f.add(a, c));
  d = f.add(d, d);                            // D = 2*((X+YY)^2 - XX - YYYY)
  const Fe e = f.add(f.add(a, a), a);         // E = 3*XX
  const Fe ff = f.sqr(e);                     // F = E^2
  Point r;
  r.x = f.sub(ff, f.add(d, d));               // X3 = F - 2D
  Fe c8 = f.add(c, c);
  c8 = f.add(c8, c8);
  c8 = f.add(c8, c8);                         // 8*YYYY
  r.y = f.sub(f.mul(e, f.sub(d, r.x)), c8);   // Y3 = E*(D-X3) - 8*YYYY
  const Fe yz = f.mul(p.y, p.z);
  r.z = f.add(yz, yz);                        // Z3 = 2*Y*Z
  return r;
}

Point Curve::add(const Point& p, const Point& q) const {
  if (p.is_infinity()) return q;
  if (q.is_infinity()) return p;
  const auto& f = fp_;
  // add-2007-bl general Jacobian addition.
  const Fe z1z1 = f.sqr(p.z);
  const Fe z2z2 = f.sqr(q.z);
  const Fe u1 = f.mul(p.x, z2z2);
  const Fe u2 = f.mul(q.x, z1z1);
  const Fe s1 = f.mul(f.mul(p.y, q.z), z2z2);
  const Fe s2 = f.mul(f.mul(q.y, p.z), z1z1);
  if (u1 == u2) {
    if (s1 == s2) return dbl(p);
    return infinity();  // P + (-P)
  }
  const Fe h = f.sub(u2, u1);
  Fe i = f.add(h, h);
  i = f.sqr(i);                                // I = (2H)^2
  const Fe j = f.mul(h, i);                    // J = H*I
  Fe rr = f.sub(s2, s1);
  rr = f.add(rr, rr);                          // r = 2*(S2-S1)
  const Fe v = f.mul(u1, i);                   // V = U1*I
  Point out;
  out.x = f.sub(f.sub(f.sqr(rr), j), f.add(v, v));  // X3 = r^2 - J - 2V
  Fe s1j = f.mul(s1, j);
  s1j = f.add(s1j, s1j);
  out.y = f.sub(f.mul(rr, f.sub(v, out.x)), s1j);   // Y3 = r*(V-X3) - 2*S1*J
  Fe z = f.add(p.z, q.z);
  z = f.sub(f.sqr(z), f.add(z1z1, z2z2));
  out.z = f.mul(z, h);                              // Z3 = ((Z1+Z2)^2-Z1Z1-Z2Z2)*H
  return out;
}

Point Curve::add_mixed(const Point& p, const Point& q) const {
  if (q.is_infinity()) return p;
  if (p.is_infinity()) return q;
  const auto& f = fp_;
  // madd-2007-bl: general addition specialized for Z2 == 1.
  const Fe z1z1 = f.sqr(p.z);
  const Fe u2 = f.mul(q.x, z1z1);
  const Fe s2 = f.mul(f.mul(q.y, p.z), z1z1);
  if (u2 == p.x) {
    if (s2 == p.y) return dbl(p);
    return infinity();  // P + (-P)
  }
  const Fe h = f.sub(u2, p.x);
  const Fe hh = f.sqr(h);
  Fe i = f.add(hh, hh);
  i = f.add(i, i);                             // I = 4*HH
  const Fe j = f.mul(h, i);                    // J = H*I
  Fe rr = f.sub(s2, p.y);
  rr = f.add(rr, rr);                          // r = 2*(S2-Y1)
  const Fe v = f.mul(p.x, i);                  // V = X1*I
  Point out;
  out.x = f.sub(f.sub(f.sqr(rr), j), f.add(v, v));  // X3 = r^2 - J - 2V
  Fe y1j = f.mul(p.y, j);
  y1j = f.add(y1j, y1j);
  out.y = f.sub(f.mul(rr, f.sub(v, out.x)), y1j);   // Y3 = r*(V-X3) - 2*Y1*J
  out.z = f.sub(f.sub(f.sqr(f.add(p.z, h)), z1z1), hh);  // Z3 = (Z1+H)^2-Z1Z1-HH
  return out;
}

void Curve::batch_normalize(std::span<Point> pts) const {
  const auto& f = fp_;
  // Montgomery trick: prefix-multiply all Z's, invert the product once, then
  // peel per-point inverses off walking backwards.
  std::vector<Fe> prefix;
  prefix.reserve(pts.size());
  Fe acc = f.one();
  for (const Point& p : pts) {
    if (p.is_infinity()) continue;
    prefix.push_back(acc);
    acc = f.mul(acc, p.z);
  }
  if (prefix.empty()) return;
  Fe inv = f.inverse(acc);
  std::size_t k = prefix.size();
  for (std::size_t idx = pts.size(); idx-- > 0;) {
    Point& p = pts[idx];
    if (p.is_infinity()) continue;
    --k;
    const Fe zinv = f.mul(inv, prefix[k]);
    inv = f.mul(inv, p.z);
    const Fe zinv2 = f.sqr(zinv);
    p.x = f.mul(p.x, zinv2);
    p.y = f.mul(p.y, f.mul(zinv2, zinv));
    p.z = f.one();
  }
}

std::vector<AffinePoint> Curve::batch_to_affine(std::span<const Point> pts) const {
  std::vector<Point> norm(pts.begin(), pts.end());
  batch_normalize(norm);
  std::vector<AffinePoint> out(norm.size());
  for (std::size_t i = 0; i < norm.size(); ++i) {
    if (norm[i].is_infinity()) {
      out[i].infinity = true;
    } else {
      out[i].x = fp_.from_mont(norm[i].x);
      out[i].y = fp_.from_mont(norm[i].y);
    }
  }
  return out;
}

Point Curve::mul(const U256& k, const Point& p) const {
  Point acc = infinity();
  const int top = k.bit_length();
  for (int i = top; i >= 0; --i) {
    acc = dbl(acc);
    if (k.bit(i)) acc = add(acc, p);
  }
  return acc;
}

Point Curve::mul_g(const U256& k) const {
  Point acc = infinity();
  for (int i = 0; i < 64; ++i) {
    const unsigned digit = static_cast<unsigned>((k.w[i / 16] >> (4 * (i % 16))) & 0xF);
    if (digit != 0) acc = add_mixed(acc, g_table_[i][digit - 1]);
  }
  return acc;
}

Point Curve::mul_add(const U256& a, const U256& b, const Point& p) const {
  return msm(a, std::span<const U256>(&b, 1), std::span<const Point>(&p, 1));
}

Point Curve::msm(const U256& g_scalar, std::span<const U256> scalars,
                 std::span<const Point> points) const {
  if (scalars.size() != points.size()) {
    throw std::invalid_argument("msm: scalars/points length mismatch");
  }
  // wnaf5 recoding assumes its input never borrows past 2^256 when a window
  // digit is subtracted, which holds exactly for scalars reduced mod n
  // (n < 2^256 - 15). Enforce the precondition instead of silently wrapping.
  for (const U256& s : scalars) {
    if (!u256_less(s, kN)) {
      throw std::invalid_argument("msm: scalar not reduced mod n");
    }
  }
  const std::size_t n = points.size();
  // Odd multiples 1P, 3P, ..., 15P per point (width-5 wNAF), all normalized
  // with a single inversion so every ladder add is a mixed add.
  std::vector<Point> tables(n * 8);
  for (std::size_t i = 0; i < n; ++i) {
    tables[i * 8] = points[i];
    const Point p2 = dbl(points[i]);
    for (std::size_t j = 1; j < 8; ++j) {
      tables[i * 8 + j] = add(tables[i * 8 + j - 1], p2);
    }
  }
  batch_normalize(tables);
  std::vector<std::vector<std::int8_t>> nafs;
  nafs.reserve(n);
  for (const U256& s : scalars) nafs.push_back(wnaf5(s));

  // One shared ladder serves every scalar: the doublings are paid once. The
  // fixed-base contribution digit_j * 16^j * G is injected as (digit_j * G)
  // at ladder position 4j — the remaining 4j doublings scale it into place.
  Point acc = infinity();
  for (int i = 256; i >= 0; --i) {
    acc = dbl(acc);
    for (std::size_t s = 0; s < n; ++s) {
      const auto& naf = nafs[s];
      if (static_cast<std::size_t>(i) >= naf.size() || naf[i] == 0) continue;
      const int d = naf[i];
      const Point& entry = tables[s * 8 + static_cast<std::size_t>((d > 0 ? d : -d) - 1) / 2];
      acc = add_mixed(acc, d > 0 ? entry : negate(entry));
    }
    if ((i & 3) == 0 && i <= 252) {
      const int w = i / 4;
      const unsigned digit = static_cast<unsigned>((g_scalar.w[w / 16] >> (4 * (w % 16))) & 0xF);
      if (digit != 0) acc = add_mixed(acc, g_table_[0][digit - 1]);
    }
  }
  return acc;
}

AffinePoint Curve::to_affine(const Point& p) const {
  AffinePoint a;
  if (p.is_infinity()) {
    a.infinity = true;
    return a;
  }
  const auto& f = fp_;
  const Fe zinv = f.inverse(p.z);
  const Fe zinv2 = f.sqr(zinv);
  const Fe zinv3 = f.mul(zinv2, zinv);
  a.x = f.from_mont(f.mul(p.x, zinv2));
  a.y = f.from_mont(f.mul(p.y, zinv3));
  return a;
}

Point Curve::from_affine(const AffinePoint& a) const {
  if (a.infinity) return infinity();
  Point p;
  p.x = fp_.to_mont(a.x);
  p.y = fp_.to_mont(a.y);
  p.z = fp_.one();
  return p;
}

bool Curve::on_curve(const AffinePoint& a) const {
  if (a.infinity) return true;
  if (!u256_less(a.x, kP) || !u256_less(a.y, kP)) return false;
  const auto& f = fp_;
  const Fe x = f.to_mont(a.x);
  const Fe y = f.to_mont(a.y);
  const Fe lhs = f.sqr(y);
  const Fe rhs = f.add(f.mul(f.sqr(x), x), b7_);
  return lhs == rhs;
}

bool Curve::equal(const Point& p, const Point& q) const {
  if (p.is_infinity() || q.is_infinity()) return p.is_infinity() == q.is_infinity();
  // Cross-multiplied comparison avoids inversions:
  // X1/Z1^2 == X2/Z2^2  <=>  X1*Z2^2 == X2*Z1^2, likewise for Y with cubes.
  const auto& f = fp_;
  const Fe z1z1 = f.sqr(p.z);
  const Fe z2z2 = f.sqr(q.z);
  if (!(f.mul(p.x, z2z2) == f.mul(q.x, z1z1))) return false;
  const Fe z1c = f.mul(z1z1, p.z);
  const Fe z2c = f.mul(z2z2, q.z);
  return f.mul(p.y, z2c) == f.mul(q.y, z1c);
}

U256 scalar_from_digest(const Digest& d) {
  const U256 x = U256::from_bytes_be(d.view());
  return u256_mod(x, kN);
}

}  // namespace fides::crypto
