// Unit tests for the crypto substrate: SHA-256, U256, Montgomery fields,
// secp256k1 group law, Schnorr signatures, CoSi collective signing.
#include <gtest/gtest.h>

#include "common/serde.hpp"
#include "crypto/cosi.hpp"
#include "crypto/schnorr.hpp"

namespace fides::crypto {
namespace {

// --- SHA-256 (FIPS 180-4 vectors) -------------------------------------------

TEST(Sha256, EmptyVector) {
  EXPECT_EQ(sha256({}).hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AbcVector) {
  EXPECT_EQ(sha256(to_bytes("abc")).hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockVector) {
  EXPECT_EQ(sha256(to_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")).hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  const std::string big(1000000, 'a');
  EXPECT_EQ(sha256(to_bytes(big)).hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const Bytes data = to_bytes("the quick brown fox jumps over the lazy dog!!");
  Sha256 h;
  for (std::size_t i = 0; i < data.size(); i += 7) {
    h.update(BytesView(data).subspan(i, std::min<std::size_t>(7, data.size() - i)));
  }
  EXPECT_EQ(h.finalize(), sha256(data));
}

TEST(Sha256, PairMatchesConcatenation) {
  const Digest a = sha256(to_bytes("a"));
  const Digest b = sha256(to_bytes("b"));
  EXPECT_EQ(sha256_pair(a, b), sha256(concat({a.view(), b.view()})));
}

TEST(Digest, ZeroAndComparison) {
  EXPECT_TRUE(Digest::zero().is_zero());
  EXPECT_FALSE(sha256(to_bytes("x")).is_zero());
  EXPECT_NE(sha256(to_bytes("x")), sha256(to_bytes("y")));
}

// --- U256 ---------------------------------------------------------------------

TEST(U256, BytesRoundTrip) {
  const U256 x = U256::from_limbs(0x1111, 0x2222, 0x3333, 0x4444);
  const auto bytes = x.to_bytes_be();
  EXPECT_EQ(U256::from_bytes_be(BytesView(bytes.data(), bytes.size())), x);
}

TEST(U256, HexRoundTrip) {
  const auto x = U256::from_hex("deadbeef");
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(x->w[0], 0xDEADBEEFULL);
  EXPECT_EQ(x->hex().substr(56), "deadbeef");
}

TEST(U256, AddCarryChain) {
  const U256 max = U256::from_limbs(~0ULL, ~0ULL, ~0ULL, ~0ULL);
  U256 out;
  EXPECT_EQ(u256_add(out, max, U256(1)), 1u);  // wraps with carry-out
  EXPECT_TRUE(out.is_zero());
}

TEST(U256, SubBorrowChain) {
  U256 out;
  EXPECT_EQ(u256_sub(out, U256(0), U256(1)), 1u);
  EXPECT_EQ(out, U256::from_limbs(~0ULL, ~0ULL, ~0ULL, ~0ULL));
}

TEST(U256, AddSubInverse) {
  const U256 a = U256::from_limbs(0x123456789ABCDEF0, 0xFEDCBA9876543210, 7, 9);
  const U256 b = U256::from_limbs(0xAAAAAAAAAAAAAAAA, 0x5555555555555555, 1, 2);
  U256 sum, back;
  u256_add(sum, a, b);
  u256_sub(back, sum, b);
  EXPECT_EQ(back, a);
}

TEST(U256, MulWideSmall) {
  const auto r = u256_mul_wide(U256(0xFFFFFFFFFFFFFFFFULL), U256(2));
  EXPECT_EQ(r[0], 0xFFFFFFFFFFFFFFFEULL);
  EXPECT_EQ(r[1], 1u);
  for (int i = 2; i < 8; ++i) EXPECT_EQ(r[i], 0u);
}

TEST(U256, ModSmallCases) {
  EXPECT_EQ(u256_mod(U256(17), U256(5)), U256(2));
  EXPECT_EQ(u256_mod(U256(4), U256(5)), U256(4));
  EXPECT_EQ(u256_mod(U256(0), U256(5)), U256(0));
}

TEST(U256, U512ModMatchesMulMod) {
  // (a * b) mod m computed wide must equal ((a mod m)*(b mod m)) mod m for
  // small values checkable with __int128.
  const std::uint64_t m64 = 0xFFFFFFFFFFFFFFC5ULL;  // large prime < 2^64
  const U256 m(m64);
  const std::uint64_t a = 0x123456789ABCDEFULL, b = 0xFEDCBA987654321ULL;
  const auto wide = u256_mul_wide(U256(a), U256(b));
  const U256 got = u512_mod(wide, m);
  const unsigned __int128 expect =
      static_cast<unsigned __int128>(a) * b % m64;
  EXPECT_EQ(got, U256(static_cast<std::uint64_t>(expect)));
}

TEST(U256, BitLength) {
  EXPECT_EQ(U256(0).bit_length(), -1);
  EXPECT_EQ(U256(1).bit_length(), 0);
  EXPECT_EQ(U256(0x8000).bit_length(), 15);
  EXPECT_EQ(U256::from_limbs(0, 0, 0, 1).bit_length(), 192);
}

// --- Montgomery field ----------------------------------------------------------

class FieldTest : public ::testing::Test {
 protected:
  const MontgomeryField& fn() { return Curve::instance().fn(); }
  const MontgomeryField& fp() { return Curve::instance().fp(); }
};

TEST_F(FieldTest, ToFromMontRoundTrip) {
  const U256 x = U256::from_limbs(0xABCD, 0x1234, 0x9999, 0x0042);
  EXPECT_EQ(fp().from_mont(fp().to_mont(x)), x);
  EXPECT_EQ(fn().from_mont(fn().to_mont(x)), x);
}

TEST_F(FieldTest, MulMatchesSchoolbook) {
  const U256 a(123456789), b(987654321);
  const Fe prod = fp().mul(fp().to_mont(a), fp().to_mont(b));
  EXPECT_EQ(fp().from_mont(prod), U256(123456789ULL * 987654321ULL));
}

TEST_F(FieldTest, AddSubNegIdentities) {
  const Fe a = fp().to_mont(U256(77));
  const Fe b = fp().to_mont(U256(33));
  EXPECT_EQ(fp().from_mont(fp().sub(fp().add(a, b), b)), U256(77));
  EXPECT_TRUE(fp().is_zero(fp().add(a, fp().neg(a))));
  EXPECT_EQ(fp().neg(fp().zero()), fp().zero());
}

TEST_F(FieldTest, InverseIsMultiplicative) {
  const Fe a = fp().to_mont(U256::from_limbs(0xDEAD, 0xBEEF, 0xCAFE, 0x0B0E));
  const Fe inv = fp().inverse(a);
  EXPECT_EQ(fp().mul(a, inv), fp().one());
}

TEST_F(FieldTest, InverseOfZeroThrows) {
  EXPECT_THROW(fp().inverse(fp().zero()), std::domain_error);
}

TEST_F(FieldTest, PowFermatLittle) {
  // a^(p-1) == 1 mod p for prime p.
  const Fe a = fp().to_mont(U256(0xABCDEF));
  U256 exp;
  u256_sub(exp, fp().modulus(), U256(1));
  EXPECT_EQ(fp().pow(a, exp), fp().one());
}

TEST_F(FieldTest, RejectsEvenModulus) {
  EXPECT_THROW(MontgomeryField(U256(10)), std::invalid_argument);
}

// --- secp256k1 ------------------------------------------------------------------

class CurveTest : public ::testing::Test {
 protected:
  const Curve& c = Curve::instance();
};

TEST_F(CurveTest, GeneratorOnCurve) {
  EXPECT_TRUE(c.on_curve(c.to_affine(c.generator())));
}

TEST_F(CurveTest, OrderTimesGeneratorIsInfinity) {
  EXPECT_TRUE(c.mul(c.order(), c.generator()).is_infinity());
}

TEST_F(CurveTest, KnownDoubleOfG) {
  const AffinePoint g2 = c.to_affine(c.dbl(c.generator()));
  EXPECT_EQ(g2.x.hex(),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_EQ(g2.y.hex(),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
}

TEST_F(CurveTest, AddDblConsistency) {
  // G + G (general addition) must equal dbl(G).
  const Point sum = c.add(c.generator(), c.generator());
  EXPECT_TRUE(c.equal(sum, c.dbl(c.generator())));
}

TEST_F(CurveTest, MulDistributesOverScalarAddition) {
  const U256 k1(123456), k2(654321);
  U256 k3;
  u256_add(k3, k1, k2);
  const Point lhs = c.add(c.mul_g(k1), c.mul_g(k2));
  EXPECT_TRUE(c.equal(lhs, c.mul_g(k3)));
}

TEST_F(CurveTest, FixedBaseTableMatchesGenericMul) {
  for (std::uint64_t k : {1ULL, 2ULL, 16ULL, 0xFFFFULL, 0x123456789ABCDEFULL}) {
    EXPECT_TRUE(c.equal(c.mul_g(U256(k)), c.mul(U256(k), c.generator())));
  }
  // Also a full-width scalar.
  const U256 big = U256::from_limbs(0x1111111111111111, 0x2222222222222222,
                                    0x3333333333333333, 0x4444444444444444);
  EXPECT_TRUE(c.equal(c.mul_g(big), c.mul(big, c.generator())));
}

TEST_F(CurveTest, MulAddMatchesSeparateMuls) {
  // Strauss-joint ladder vs the textbook composition it replaces, over
  // hash-derived (effectively random full-width) scalars and points.
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    const U256 a = scalar_from_digest(sha256(to_bytes("a" + std::to_string(trial))));
    const U256 b = scalar_from_digest(sha256(to_bytes("b" + std::to_string(trial))));
    const U256 k = scalar_from_digest(sha256(to_bytes("p" + std::to_string(trial))));
    const Point p = c.mul_g(k);
    const Point expect = c.add(c.mul_g(a), c.mul(b, p));
    EXPECT_TRUE(c.equal(c.mul_add(a, b, p), expect)) << "trial " << trial;
  }
}

TEST_F(CurveTest, MulAddEdgeScalars) {
  const U256 k = scalar_from_digest(sha256(to_bytes("edge-point")));
  const Point p = c.mul_g(k);
  const U256 a = scalar_from_digest(sha256(to_bytes("edge-a")));
  EXPECT_TRUE(c.equal(c.mul_add(U256(0), U256(1), p), p));
  EXPECT_TRUE(c.equal(c.mul_add(a, U256(0), p), c.mul_g(a)));
  EXPECT_TRUE(c.mul_add(U256(0), U256(0), p).is_infinity());
  EXPECT_TRUE(c.equal(c.mul_add(U256(0), U256(5), c.infinity()), c.infinity()));
}

TEST_F(CurveTest, MsmMatchesSumOfMuls) {
  std::vector<U256> scalars;
  std::vector<Point> points;
  const U256 g_scalar = scalar_from_digest(sha256(to_bytes("msm-g")));
  Point expect = c.mul_g(g_scalar);
  for (std::uint64_t i = 0; i < 7; ++i) {
    const U256 s = scalar_from_digest(sha256(to_bytes("msm-s" + std::to_string(i))));
    const U256 k = scalar_from_digest(sha256(to_bytes("msm-p" + std::to_string(i))));
    const Point p = c.mul_g(k);
    scalars.push_back(s);
    points.push_back(p);
    expect = c.add(expect, c.mul(s, p));
  }
  EXPECT_TRUE(c.equal(c.msm(g_scalar, scalars, points), expect));
  EXPECT_THROW(c.msm(g_scalar, scalars, std::span<const Point>(points.data(), 3)),
               std::invalid_argument);
}

TEST_F(CurveTest, MsmRejectsUnreducedScalars) {
  // wnaf5 recoding is only correct for scalars < 2^256 - 15; msm enforces the
  // stricter (and natural) precondition that wNAF scalars are reduced mod n.
  const Point p = c.mul_g(U256(7));
  const std::vector<Point> points{p};
  std::vector<U256> scalars{c.order()};
  EXPECT_THROW(c.msm(U256(1), scalars, points), std::invalid_argument);
  EXPECT_THROW(c.mul_add(U256(1), c.order(), p), std::invalid_argument);
  // One below n is fine.
  u256_sub(scalars[0], c.order(), U256(1));
  EXPECT_TRUE(c.equal(c.msm(U256(0), scalars, points), c.negate(p)));
}

TEST_F(CurveTest, BatchToAffineMatchesToAffine) {
  std::vector<Point> pts;
  for (std::uint64_t i = 0; i < 6; ++i) {
    pts.push_back(c.mul_g(scalar_from_digest(sha256(to_bytes("bn" + std::to_string(i))))));
  }
  pts.push_back(c.infinity());
  const std::vector<AffinePoint> affine = c.batch_to_affine(pts);
  ASSERT_EQ(affine.size(), pts.size());
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    EXPECT_TRUE(affine[i] == c.to_affine(pts[i])) << "point " << i;
  }
  EXPECT_TRUE(affine.back().infinity);
}

TEST_F(CurveTest, AddInfinityIdentity) {
  const Point inf = c.infinity();
  EXPECT_TRUE(c.equal(c.add(inf, c.generator()), c.generator()));
  EXPECT_TRUE(c.equal(c.add(c.generator(), inf), c.generator()));
  EXPECT_TRUE(c.add(inf, inf).is_infinity());
}

TEST_F(CurveTest, AddPointAndNegationIsInfinity) {
  EXPECT_TRUE(c.add(c.generator(), c.negate(c.generator())).is_infinity());
}

TEST_F(CurveTest, AffineSerializationRoundTrip) {
  const AffinePoint p = c.to_affine(c.mul_g(U256(777)));
  const auto back = AffinePoint::deserialize(p.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, p);
}

TEST_F(CurveTest, InfinitySerializationRoundTrip) {
  AffinePoint inf;
  inf.infinity = true;
  const auto back = AffinePoint::deserialize(inf.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->infinity);
}

TEST_F(CurveTest, DeserializeRejectsOffCurvePoints) {
  AffinePoint bogus = c.to_affine(c.mul_g(U256(5)));
  U256 y = bogus.y;
  U256 tweaked;
  u256_add(tweaked, y, U256(1));
  bogus.y = tweaked;
  EXPECT_FALSE(AffinePoint::deserialize(bogus.serialize()).has_value());
}

TEST_F(CurveTest, ScalarFromDigestBelowOrder) {
  const U256 s = scalar_from_digest(sha256(to_bytes("anything")));
  EXPECT_TRUE(u256_less(s, c.order()));
}

// --- Schnorr --------------------------------------------------------------------

TEST(Schnorr, SignVerifyRoundTrip) {
  const KeyPair kp = KeyPair::deterministic(1);
  const Bytes msg = to_bytes("transaction payload");
  EXPECT_TRUE(verify(kp.public_key(), msg, kp.sign(msg)));
}

TEST(Schnorr, RejectsWrongMessage) {
  const KeyPair kp = KeyPair::deterministic(1);
  const Signature sig = kp.sign(to_bytes("m1"));
  EXPECT_FALSE(verify(kp.public_key(), to_bytes("m2"), sig));
}

TEST(Schnorr, RejectsWrongKey) {
  const KeyPair a = KeyPair::deterministic(1);
  const KeyPair b = KeyPair::deterministic(2);
  const Bytes msg = to_bytes("m");
  EXPECT_FALSE(verify(b.public_key(), msg, a.sign(msg)));
}

TEST(Schnorr, RejectsTamperedSignature) {
  const KeyPair kp = KeyPair::deterministic(3);
  const Bytes msg = to_bytes("m");
  Signature sig = kp.sign(msg);
  U256 s2;
  u256_add(s2, sig.s, U256(1));
  sig.s = s2;
  EXPECT_FALSE(verify(kp.public_key(), msg, sig));
}

TEST(Schnorr, DeterministicSigning) {
  const KeyPair kp = KeyPair::deterministic(4);
  const Bytes msg = to_bytes("m");
  const Signature s1 = kp.sign(msg);
  const Signature s2 = kp.sign(msg);
  EXPECT_EQ(s1.r, s2.r);
  EXPECT_EQ(s1.s, s2.s);
}

TEST(Schnorr, DistinctKeysFromDistinctSeeds) {
  EXPECT_NE(KeyPair::deterministic(1).public_key(),
            KeyPair::deterministic(2).public_key());
}

TEST(Schnorr, SignatureSerializationRoundTrip) {
  const KeyPair kp = KeyPair::deterministic(5);
  const Bytes msg = to_bytes("serialize me");
  const Signature sig = kp.sign(msg);
  const auto back = Signature::deserialize(sig.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(verify(kp.public_key(), msg, *back));
}

TEST(Schnorr, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Signature::deserialize(to_bytes("not a signature")).has_value());
  EXPECT_FALSE(Signature::deserialize({}).has_value());
}

TEST(Schnorr, DeserializeRejectsNonCanonicalScalar) {
  // s must be a reduced scalar: s == n (and anything above) is rejected even
  // though s mod n would verify — non-canonical encodings are malleable.
  const KeyPair kp = KeyPair::deterministic(6);
  Signature sig = kp.sign(to_bytes("m"));
  const U256 n = Curve::instance().order();
  sig.s = n;
  EXPECT_FALSE(Signature::deserialize(sig.serialize()).has_value());
  u256_add(sig.s, n, U256(1));  // n + 1 (no 256-bit overflow: n < 2^256 - 1)
  EXPECT_FALSE(Signature::deserialize(sig.serialize()).has_value());
}

TEST(Schnorr, DeserializeRejectsInfinityR) {
  // R = k·G with k != 0 is never infinity; an infinity R encodes s·G == c·P,
  // which a signer without the secret key could satisfy trivially for c == 0.
  const KeyPair kp = KeyPair::deterministic(7);
  Signature sig = kp.sign(to_bytes("m"));
  sig.r = AffinePoint{};
  sig.r.infinity = true;
  EXPECT_FALSE(Signature::deserialize(sig.serialize()).has_value());
}

// --- Batched Schnorr verification ------------------------------------------------

class BatchVerifyTest : public ::testing::Test {
 protected:
  struct Entry {
    PublicKey pk;
    Bytes message;
    Signature sig;
  };

  void make_entries(std::size_t n, std::uint64_t seed_base = 500) {
    entries.clear();
    for (std::size_t i = 0; i < n; ++i) {
      const KeyPair kp = KeyPair::deterministic(seed_base + i);
      Bytes msg = to_bytes("batch message " + std::to_string(i));
      const Signature sig = kp.sign(msg);
      entries.push_back(Entry{kp.public_key(), std::move(msg), sig});
    }
  }

  std::vector<BatchItem> items() const {
    std::vector<BatchItem> out;
    out.reserve(entries.size());
    for (const Entry& e : entries) {
      out.push_back(BatchItem{&e.pk, BytesView(e.message.data(), e.message.size()),
                              &e.sig});
    }
    return out;
  }

  std::vector<Entry> entries;
};

TEST_F(BatchVerifyTest, AllValidBatchAccepted) {
  make_entries(9);
  const auto verdicts = batch_verify(items());
  ASSERT_EQ(verdicts.size(), entries.size());
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    EXPECT_EQ(verdicts[i], 1) << "item " << i;
  }
}

TEST_F(BatchVerifyTest, EmptyAndSingletonBatches) {
  EXPECT_TRUE(batch_verify({}).empty());
  make_entries(1);
  EXPECT_EQ(batch_verify(items()), std::vector<unsigned char>{1});
  entries[0].message = to_bytes("tampered");
  EXPECT_EQ(batch_verify(items()), std::vector<unsigned char>{0});
}

TEST_F(BatchVerifyTest, CorruptedSubsetsAttributedExactly) {
  // Property: for any corrupted subset (drawn from a hash, covering empty,
  // singleton, runs, and scattered patterns) the recursive split pins the
  // exact bad indices — no false accepts and no collateral rejects.
  const std::size_t n = 12;
  const auto& fn = Curve::instance().fn();
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    make_entries(n, 500 + trial * 100);
    const Digest d = sha256(to_bytes("corrupt-mask " + std::to_string(trial)));
    const std::uint16_t mask =
        static_cast<std::uint16_t>((d.bytes[0] | (d.bytes[1] << 8)) & 0x0FFF);
    for (std::size_t i = 0; i < n; ++i) {
      if (!(mask >> i & 1)) continue;
      // s += 1 mod n: structurally well-formed, cryptographically wrong.
      entries[i].sig.s =
          fn.from_mont(fn.add(fn.to_mont(entries[i].sig.s), fn.to_mont(U256(1))));
    }
    const auto verdicts = batch_verify(items());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(verdicts[i], (mask >> i & 1) ? 0 : 1)
          << "trial " << trial << " item " << i << " mask " << mask;
    }
  }
}

TEST_F(BatchVerifyTest, CancellationPairCaught) {
  // Two defects engineered to cancel under unit coefficients: s0 += d and
  // s1 -= d leave Σsᵢ (and every other aggregate term) unchanged, so a naive
  // z == 1 batch equation would accept both. The Fiat–Shamir zᵢ are fixed by
  // the batch contents but not under the signer's control, so the weighted
  // sum z₀·d - z₁·d vanishes only if z₀ == z₁ — and the split then verifies
  // each signature individually anyway.
  make_entries(6);
  const auto& fn = Curve::instance().fn();
  const Fe d = fn.to_mont(U256(123456789));
  entries[0].sig.s = fn.from_mont(fn.add(fn.to_mont(entries[0].sig.s), d));
  entries[1].sig.s = fn.from_mont(fn.sub(fn.to_mont(entries[1].sig.s), d));
  ASSERT_FALSE(verify(entries[0].pk, entries[0].message, entries[0].sig));
  ASSERT_FALSE(verify(entries[1].pk, entries[1].message, entries[1].sig));
  const auto verdicts = batch_verify(items());
  EXPECT_EQ(verdicts[0], 0);
  EXPECT_EQ(verdicts[1], 0);
  for (std::size_t i = 2; i < entries.size(); ++i) {
    EXPECT_EQ(verdicts[i], 1) << "item " << i;
  }
}

TEST_F(BatchVerifyTest, CoefficientSolveForgeryRejected) {
  // Regression: the RLC coefficient seed must commit to each signature's s.
  // An earlier derivation hashed only (R, pk, m), so an adversary holding
  // the batch's secret keys could compute every zᵢ before committing to the
  // s values and then solve z₀·d₀ + z₁·d₁ == 0 (mod n) for offsets that
  // leave Σ zᵢsᵢ — and hence the full-batch aggregate — unchanged while
  // both signatures fail individual verification. Reproduce that exact
  // solve against the s-free derivation and check the batch rejects it.
  make_entries(6);
  const auto& fn = Curve::instance().fn();

  // The zᵢ exactly as the flawed scheme derived them: s absent from the seed.
  Sha256 seed_h;
  seed_h.update(to_bytes("fides-batch-verify-v1"));
  for (const Entry& e : entries) {
    seed_h.update(e.sig.r.serialize());
    seed_h.update(e.pk.serialize());
    seed_h.update(sha256(e.message).view());
  }
  const Digest seed = seed_h.finalize();
  const auto coeff = [&seed](std::size_t i) {
    Sha256 h;
    h.update(seed.view());
    Writer w;
    w.u64(static_cast<std::uint64_t>(i));
    h.update(w.data());
    U256 zi = U256::from_bytes_be(h.finalize().view());
    zi.w[2] = 0;
    zi.w[3] = 0;
    if (zi.is_zero()) zi = U256(1);
    return zi;
  };

  // d₁ = -z₀·d₀ / z₁ mod n cancels the d₀ perturbation in the z-weighted sum.
  const Fe z0 = fn.to_mont(coeff(0));
  const Fe z1 = fn.to_mont(coeff(1));
  const Fe d0 = fn.to_mont(U256(0xD00DFEEDULL));
  const Fe d1 = fn.neg(fn.mul(fn.mul(z0, d0), fn.inverse(z1)));
  entries[0].sig.s = fn.from_mont(fn.add(fn.to_mont(entries[0].sig.s), d0));
  entries[1].sig.s = fn.from_mont(fn.add(fn.to_mont(entries[1].sig.s), d1));
  ASSERT_FALSE(verify(entries[0].pk, entries[0].message, entries[0].sig));
  ASSERT_FALSE(verify(entries[1].pk, entries[1].message, entries[1].sig));

  const auto verdicts = batch_verify(items());
  EXPECT_EQ(verdicts[0], 0);
  EXPECT_EQ(verdicts[1], 0);
  for (std::size_t i = 2; i < entries.size(); ++i) {
    EXPECT_EQ(verdicts[i], 1) << "item " << i;
  }
}

TEST_F(BatchVerifyTest, ScreensNonCanonicalItems) {
  // The structural screen rejects malformed items without poisoning the
  // aggregate: same strictness as Signature::deserialize, exercised through
  // the batch path (s >= n and infinity R never reach the MSM).
  make_entries(5);
  entries[1].sig.s = Curve::instance().order();
  entries[3].sig.r = AffinePoint{};
  entries[3].sig.r.infinity = true;
  const auto verdicts = batch_verify(items());
  const std::vector<unsigned char> want{1, 0, 1, 0, 1};
  EXPECT_EQ(verdicts, want);
}

// --- CoSi ------------------------------------------------------------------------

class CosiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (std::uint64_t i = 0; i < 4; ++i) {
      keypairs.push_back(KeyPair::deterministic(100 + i));
      pks.push_back(keypairs.back().public_key());
    }
  }

  CosiSignature collective_sign(BytesView record, std::uint64_t round) {
    commitments.clear();
    vs.clear();
    for (const auto& kp : keypairs) {
      commitments.push_back(cosi_commit(kp, record, round));
      vs.push_back(commitments.back().v);
    }
    const AffinePoint v_agg = cosi_aggregate_commitments(vs);
    challenge = cosi_challenge(v_agg, record);
    responses.clear();
    for (std::size_t i = 0; i < keypairs.size(); ++i) {
      responses.push_back(cosi_respond(keypairs[i], commitments[i].secret, challenge));
    }
    return CosiSignature{v_agg, cosi_aggregate_responses(responses)};
  }

  std::vector<KeyPair> keypairs;
  std::vector<PublicKey> pks;
  std::vector<CosiCommitment> commitments;
  std::vector<AffinePoint> vs;
  std::vector<U256> responses;
  U256 challenge;
};

TEST_F(CosiTest, FullRoundVerifies) {
  const Bytes record = to_bytes("block-contents");
  const CosiSignature sig = collective_sign(record, 1);
  EXPECT_TRUE(cosi_verify(record, sig, pks));
}

TEST_F(CosiTest, RejectsDifferentRecord) {
  const CosiSignature sig = collective_sign(to_bytes("block-1"), 1);
  EXPECT_FALSE(cosi_verify(to_bytes("block-2"), sig, pks));
}

TEST_F(CosiTest, RejectsWrongWitnessSet) {
  const Bytes record = to_bytes("block");
  const CosiSignature sig = collective_sign(record, 1);
  std::vector<PublicKey> missing(pks.begin(), pks.end() - 1);
  EXPECT_FALSE(cosi_verify(record, sig, missing));
  auto extra = pks;
  extra.push_back(KeyPair::deterministic(999).public_key());
  EXPECT_FALSE(cosi_verify(record, sig, extra));
}

TEST_F(CosiTest, RejectsEmptyWitnessSet) {
  const CosiSignature sig = collective_sign(to_bytes("b"), 1);
  EXPECT_FALSE(cosi_verify(to_bytes("b"), sig, {}));
}

TEST_F(CosiTest, PerShareVerification) {
  const Bytes record = to_bytes("block");
  collective_sign(record, 2);
  for (std::size_t i = 0; i < keypairs.size(); ++i) {
    EXPECT_TRUE(cosi_verify_share(vs[i], responses[i], challenge, pks[i]));
  }
}

TEST_F(CosiTest, FaultyWitnessIdentified) {
  // Lemma 4: a corrupt response invalidates the aggregate and the per-share
  // check pinpoints exactly the misbehaving witness.
  const Bytes record = to_bytes("block");
  collective_sign(record, 3);
  responses[1] = U256(424242);
  const CosiSignature bad{cosi_aggregate_commitments(vs),
                          cosi_aggregate_responses(responses)};
  EXPECT_FALSE(cosi_verify(record, bad, pks));
  const auto faulty = cosi_find_faulty(vs, responses, challenge, pks);
  ASSERT_EQ(faulty.size(), 1u);
  EXPECT_EQ(faulty[0], 1u);
}

TEST_F(CosiTest, MultipleFaultyWitnessesIdentified) {
  const Bytes record = to_bytes("block");
  collective_sign(record, 4);
  responses[0] = U256(1);
  responses[3] = U256(2);
  const auto faulty = cosi_find_faulty(vs, responses, challenge, pks);
  EXPECT_EQ(faulty, (std::vector<std::size_t>{0, 3}));
}

TEST_F(CosiTest, FindFaultyRejectsMismatchedSpans) {
  // Regression: mismatched span lengths used to index past the shorter
  // vector. A caller-assembly error now condemns every slot instead of
  // reading out of bounds (or silently truncating the scan).
  const Bytes record = to_bytes("block");
  collective_sign(record, 6);
  const std::vector<std::size_t> all{0, 1, 2, 3};
  std::vector<U256> short_responses(responses.begin(), responses.end() - 1);
  EXPECT_EQ(cosi_find_faulty(vs, short_responses, challenge, pks), all);
  std::vector<PublicKey> short_pks(pks.begin(), pks.end() - 2);
  EXPECT_EQ(cosi_find_faulty(vs, responses, challenge, short_pks), all);
  EXPECT_TRUE(cosi_find_faulty({}, {}, challenge, {}).empty());
}

TEST_F(CosiTest, DistinctRoundsDistinctNonces) {
  const Bytes record = to_bytes("block");
  const CosiCommitment c1 = cosi_commit(keypairs[0], record, 1);
  const CosiCommitment c2 = cosi_commit(keypairs[0], record, 2);
  EXPECT_NE(c1.secret, c2.secret);
  EXPECT_FALSE(c1.v == c2.v);
}

TEST_F(CosiTest, SignatureSerializationRoundTrip) {
  const Bytes record = to_bytes("block");
  const CosiSignature sig = collective_sign(record, 5);
  const auto back = CosiSignature::deserialize(sig.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(cosi_verify(record, *back, pks));
}

TEST_F(CosiTest, SingleWitnessDegeneratesToSchnorr) {
  // One witness: CoSi is plain Schnorr over the record.
  const Bytes record = to_bytes("solo");
  const CosiCommitment c = cosi_commit(keypairs[0], record, 1);
  const U256 ch = cosi_challenge(c.v, record);
  const U256 r = cosi_respond(keypairs[0], c.secret, ch);
  const CosiSignature sig{c.v, r};
  EXPECT_TRUE(cosi_verify(record, sig, std::span(&pks[0], 1)));
}

}  // namespace
}  // namespace fides::crypto
