// Clang Thread Safety Analysis annotations.
//
// These macros expand to clang's thread-safety attributes when compiling
// under clang and vanish under every other compiler, so they are zero
// runtime cost everywhere and zero *any* cost off-clang. With
// `-Wthread-safety -Werror=thread-safety` (wired up automatically for clang
// builds in CMakeLists.txt) the compiler then proves, per translation unit:
//
//   * every read/write of a `GUARDED_BY(mu)` field happens with `mu` held;
//   * every call of a `REQUIRES(mu)` function happens with `mu` held;
//   * `ACQUIRE`/`RELEASE` pairs balance on every path.
//
// Use the `Mutex`/`MutexLock`/`CondVar` wrappers in common/mutex.hpp rather
// than annotating `std::mutex` directly — tools/fides_lint.py bans raw
// `std::mutex` outside that header so the whole repo stays analyzable.
//
// Conventions used across the repo:
//   * shared mutable state is `GUARDED_BY(mutex_)`;
//   * state owned by a single logical thread (an actor's serialized context,
//     or setup-time-only writes) carries a `confined(...)` comment tag that
//     tools/fides_lint.py verifies instead — see the linter header for the
//     tag grammar;
//   * private helpers that assume the caller holds the lock are
//     `REQUIRES(mutex_)` (and usually named `*_locked` when the distinction
//     is easy to miss at call sites).
//
// Known analysis limits (why a handful of sites use
// NO_THREAD_SAFETY_ANALYSIS, each with a justification comment):
//   * the analysis is intra-procedural — a function that is *only ever*
//     reachable when the system is quiescent cannot express that;
//   * lambda bodies are analyzed as independent functions, so a
//     condition-variable predicate lambda reading guarded fields would warn
//     even though the wait holds the lock; the repo uses explicit
//     `while (!cond) cv.wait(lock);` loops instead;
//   * `std::recursive_mutex` is not supported — the repo has none.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define FIDES_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FIDES_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define CAPABILITY(x) FIDES_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY FIDES_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be accessed while holding the given capability.
#define GUARDED_BY(x) FIDES_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field: the pointed-to data is guarded (the pointer itself is not).
#define PT_GUARDED_BY(x) FIDES_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the listed capabilities (exclusively).
#define REQUIRES(...) FIDES_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must hold the listed capabilities at least shared.
#define REQUIRES_SHARED(...) \
  FIDES_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (and caller must not already hold it).
#define ACQUIRE(...) FIDES_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (caller must hold it).
#define RELEASE(...) FIDES_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...) \
  FIDES_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention: the
/// function acquires them itself).
#define EXCLUDES(...) FIDES_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held; teaches the analysis the
/// same fact without acquiring.
#define ASSERT_CAPABILITY(x) FIDES_THREAD_ANNOTATION(assert_capability(x))

/// Declares the return value is the capability guarding this object.
#define RETURN_CAPABILITY(x) FIDES_THREAD_ANNOTATION(lock_returned(x))

/// Opts a function out of the analysis. Every use must carry a comment
/// explaining why the invariant holds anyway (quiescence, confinement, ...).
#define NO_THREAD_SAFETY_ANALYSIS \
  FIDES_THREAD_ANNOTATION(no_thread_safety_analysis)
