// The execution substrate of the round engine.
//
// The engine splits protocol choreography from message delivery:
//
//   * A *reactor* (engine/reactor.hpp) is a pure event handler for one
//     protocol round: it consumes delivered envelopes and emits sends into
//     an Outbox. It never decides *when* anything runs.
//   * A *scheduler* owns delivery. Two implementations exist: the
//     in-process scheduler (engine/inproc_scheduler.hpp), which executes
//     deliveries immediately — serialized per destination node, concurrent
//     across nodes on the cluster's thread pool — and the SimNet adapter
//     (sim/sim_round.hpp), which replays the same reactors over the seeded
//     discrete-event network.
//
// Because reactors are schedule-oblivious and all protocol state lives in
// per-node / per-slot structures, a round's outcome (decisions, blocks,
// co-signs, ledger state) is a function of the message *contents* only —
// which is exactly the property the schedule fuzzer checks en masse, and
// what makes the in-process and simulated paths bit-identical.
#pragma once

#include <functional>
#include <optional>

#include "common/serde.hpp"
#include "fides/transport.hpp"

namespace fides::engine {

/// Sink for outbound protocol messages. Reactors call this; the scheduler
/// decides when (and, for SimNet, with what delay/faults) delivery happens.
class Outbox {
 public:
  virtual ~Outbox() = default;
  virtual void send(NodeId src, NodeId dst, Envelope env) = 0;

  /// Recovery catch-up stream: delivered in send order over an ideal link
  /// (modeling the reliable retransmission channel a rejoining node opens),
  /// and flagged as a replay so the receiver-side dedup filter lets the
  /// re-sent copies through. Default: indistinguishable from send(), which
  /// is correct for FIFO in-process delivery.
  virtual void send_replay(NodeId src, NodeId dst, Envelope env) {
    send(src, dst, std::move(env));
  }
};

/// A node-level control transition surfaced by the substrate: the node
/// died, the node came back, or a failure-detection timeout fired.
struct ControlEvent {
  enum class Kind : std::uint8_t {
    kCrash,               ///< node lost all volatile state; deliveries to it now drop
    kRecover,             ///< node restarts from its durable round log
    kCoordinatorTimeout,  ///< termination timer: check the coordinator, act if dead
    kTimer,               ///< generic node-local timer (client retry, open-loop submit)
    kPeerApplied,         ///< remote process reports `node` processed epoch `tag`'s decision
  };
  Kind kind{Kind::kCrash};
  NodeId node;
  /// Discriminates kTimer firings (e.g. which transaction's retry clock
  /// expired); unused by the other kinds.
  std::uint64_t tag{0};
};

/// Receiver side: every delivery the scheduler performs funnels through one
/// dispatch call (the pipeline's, which dedups, gates, routes, and invokes
/// the owning reactor).
class Dispatcher {
 public:
  virtual ~Dispatcher() = default;
  virtual void dispatch(NodeId src, NodeId dst, const Envelope& env, Outbox& out) = 0;

  /// One queued envelope delivery, as grouped by a scheduler's drain of a
  /// destination queue. The envelope is owned by the scheduler and stays
  /// alive for the duration of the dispatch_batch call.
  struct Delivery {
    NodeId src;
    const Envelope* env;
  };

  /// A contiguous run of deliveries claimed for one destination in one drain
  /// — the natural unit for verifying an inbox's signatures as a batch
  /// before delivering. The default preserves exact per-item semantics;
  /// overrides must too (same order, same outcomes), and may only hoist
  /// order-independent work such as signature checks.
  virtual void dispatch_batch(std::span<const Delivery> batch, NodeId dst, Outbox& out) {
    for (const auto& d : batch) dispatch(d.src, dst, *d.env, out);
  }

  /// Replay deliveries (recovery catch-up stream) bypass the at-most-once
  /// filter; everything else is dispatch().
  virtual void dispatch_replay(NodeId src, NodeId dst, const Envelope& env, Outbox& out) {
    dispatch(src, dst, env, out);
  }

  /// Crash/recover/timeout transitions from the substrate. Default: ignore
  /// (schedulers without a failure model never emit them).
  virtual void on_control(const ControlEvent& ev, Outbox& out) {
    (void)ev;
    (void)out;
  }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual Outbox& outbox() = 0;

  /// Delivers until quiescent: returns when every queued message (and
  /// everything transitively sent by its handlers) has been dispatched.
  virtual void run(Dispatcher& dispatcher) = 0;

  /// Enqueues a node-local control action (e.g. "coordinator: start the
  /// next round") serialized with `dst`'s deliveries. The default executes
  /// inline, which is correct for single-threaded schedulers; concurrent
  /// schedulers must route it through dst's delivery queue.
  virtual void post(NodeId dst, std::function<void()> fn) {
    (void)dst;
    fn();
  }

  /// Virtual network time, when the substrate models one (SimNet). The
  /// pipeline uses it for the network term of the modeled critical path;
  /// schedulers without a clock (in-process) return nullopt and the modeled
  /// term falls back to network_legs x one-way latency.
  virtual std::optional<double> virtual_now_us() const { return std::nullopt; }

  /// Threads handlers may execute on (RoundMetrics::threads_used).
  virtual std::size_t concurrency() const { return 1; }

  // --- Failure model ----------------------------------------------------------
  //
  // Node crash/recovery is a property of the delivery substrate: the
  // substrate decides that deliveries to a dead node are lost and when the
  // ControlEvents fire. SimNet implements these; schedulers without a
  // failure model keep the no-op defaults, which disables transition-
  // triggered crash points and termination timers under them.

  virtual bool supports_crashes() const { return false; }

  /// Marks `node` dead immediately: subsequent deliveries to it are lost
  /// until a scheduled recovery (none scheduled => it stays dead).
  virtual void crash_node(NodeId node) { (void)node; }

  /// Fires a kRecover ControlEvent for `node` after `delay_us` of substrate
  /// time.
  virtual void schedule_recover(NodeId node, double delay_us) {
    (void)node;
    (void)delay_us;
  }

  /// Fires a kCoordinatorTimeout ControlEvent for `node` after `delay_us` —
  /// the failure-detection probe behind cohort-driven termination.
  virtual void schedule_failure_probe(NodeId node, double delay_us) {
    (void)node;
    (void)delay_us;
  }

  // --- Distribution hooks -----------------------------------------------------
  //
  // A single-process scheduler sees every server's decision handler run
  // locally, so the pipeline's completion bookkeeping is already global.
  // The socket scheduler hosts one server per process: these two hooks let
  // the pipeline (a) tell the substrate a hosted server finished processing
  // a decision — which the substrate forwards to the coordinator process as
  // a kPeerApplied ControlEvent — and (b) hand run() a completion predicate
  // so the coordinator's event loop knows when to stop waiting for frames
  // that only remote processes can produce. Both default to no-ops; the
  // in-process and SimNet schedulers are quiescence-driven and never need
  // them.

  /// `server` (hosted by this process) finished processing the decision of
  /// the round with epoch `epoch`.
  virtual void notify_applied(std::uint32_t server, std::uint64_t epoch) {
    (void)server;
    (void)epoch;
  }

  /// Predicate run() may poll to decide whether all rounds completed.
  virtual void set_completion(std::function<bool()> done) { (void)done; }
};

// --- Engine frame -------------------------------------------------------------
//
// With pipelining, several rounds are in flight on one wire, so every engine
// payload is prefixed with the round's epoch (a u64 handed out by the
// ordserv epoch counter). The frame is part of the signed envelope payload —
// a Byzantine node cannot re-tag a message into another round without
// breaking the sender signature. Client data-path traffic is not framed; it
// never crosses the engine dispatcher.

inline Bytes frame_payload(std::uint64_t epoch, BytesView payload) {
  Writer w;
  w.u64(epoch);
  w.raw(payload);
  return std::move(w).take();
}

/// Epoch of a framed payload, or nullopt for a malformed (short) frame.
inline std::optional<std::uint64_t> peek_epoch(BytesView payload) {
  if (payload.size() < 8) return std::nullopt;
  Reader r(payload);
  return r.u64();
}

/// The protocol message bytes behind the frame header. Throws DecodeError on
/// a short frame: with real sockets the payload arrives from an untrusted
/// fd, and subspan(8) past the end would be UB, not a protocol outcome.
/// Dispatchers at trust boundaries catch DecodeError and drop the frame.
inline BytesView unframe_payload(BytesView payload) {
  if (payload.size() < 8) {
    throw DecodeError("engine frame shorter than its epoch header");
  }
  return payload.subspan(8);
}

}  // namespace fides::engine
