#include "txn/occ.hpp"

namespace fides::txn {

ValidationResult validate_occ(const store::Shard& shard, const Transaction& txn) {
  const Timestamp ts = txn.commit_ts;

  for (const auto& r : txn.rw.reads) {
    if (!shard.contains(r.id)) continue;
    const store::ItemRecord& cur = shard.peek(r.id);
    if (cur.wts != r.wts) {
      return {Vote::kAbort, "read of item " + std::to_string(r.id) +
                                " is stale: item was rewritten after the read"};
    }
    if (!(cur.wts < ts)) {
      return {Vote::kAbort, "RW-conflict: item " + std::to_string(r.id) +
                                " carries a write timestamp >= commit timestamp"};
    }
  }

  for (const auto& w : txn.rw.writes) {
    if (!shard.contains(w.id)) continue;
    const store::ItemRecord& cur = shard.peek(w.id);
    if (!(cur.wts < ts)) {
      return {Vote::kAbort, "WW-conflict: item " + std::to_string(w.id) +
                                " was written at or after commit timestamp"};
    }
    if (!(cur.rts < ts)) {
      return {Vote::kAbort, "WR-conflict: item " + std::to_string(w.id) +
                                " was read at or after commit timestamp"};
    }
    // The write entry records the item state observed at access; a write
    // over a version the client never saw (non-blind case) is stale.
    if (!w.blind() && cur.wts != w.wts) {
      return {Vote::kAbort, "write of item " + std::to_string(w.id) +
                                " based on a stale read"};
    }
  }

  return {Vote::kCommit, {}};
}

void apply_committed(store::Shard& shard, const Transaction& txn) {
  for (const auto& w : txn.rw.writes) {
    if (!shard.contains(w.id)) continue;
    shard.apply_write(w.id, w.new_value, txn.commit_ts);
    shard.update_read_ts(w.id, txn.commit_ts);
  }
  for (const auto& r : txn.rw.reads) {
    if (!shard.contains(r.id)) continue;
    shard.update_read_ts(r.id, txn.commit_ts);
  }
}

}  // namespace fides::txn
