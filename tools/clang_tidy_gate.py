#!/usr/bin/env python3
"""Gate clang-tidy output against a committed waiver list.

Reads clang-tidy / run-clang-tidy output (stdin or --input), extracts every
diagnostic of the form

  /abs/or/rel/path.cpp:123:4: warning: message [check-id,maybe-more]

normalizes the path to be repo-relative, dedupes (headers are re-diagnosed
once per including TU), and fails unless every (path, check-id) pair appears
in the waiver file (default tools/clang_tidy_waivers.txt). Line numbers are
deliberately not part of the key -- waivers should survive unrelated edits.

Exit status: 0 when every diagnostic is waived (or there are none),
1 when new diagnostics are present, 2 on usage errors.

Usage:
  run-clang-tidy -p build | tee tidy.log
  python3 tools/clang_tidy_gate.py --waivers tools/clang_tidy_waivers.txt < tidy.log

  python3 tools/clang_tidy_gate.py --self-check
"""

import argparse
import os
import re
import sys

DIAG_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*\.(?:cpp|hpp|cc|h)):(?P<line>\d+):(?P<col>\d+):\s*"
    r"(?:warning|error):\s*(?P<msg>.*?)\s*\[(?P<checks>[\w.,-]+)\]\s*$"
)

# Compiler noise that is not a clang-tidy finding.
IGNORED_CHECK_PREFIXES = ("clang-diagnostic",)


def normalize(path, root):
    path = os.path.normpath(path)
    if os.path.isabs(path):
        rel = os.path.relpath(path, root)
    else:
        rel = path
    return rel.replace(os.sep, "/")


def parse_diagnostics(lines, root):
    """Yields (path, check_id, lineno, message) for each diagnostic line."""
    for line in lines:
        m = DIAG_RE.match(line.rstrip("\n"))
        if not m:
            continue
        path = normalize(m.group("path"), root)
        if path.startswith(".."):
            continue  # system/third-party header outside the repo
        for check in m.group("checks").split(","):
            check = check.strip()
            if not check or check.startswith(IGNORED_CHECK_PREFIXES):
                continue
            yield path, check, int(m.group("line")), m.group("msg")


def load_waivers(path):
    waivers = set()
    if not os.path.exists(path):
        return waivers
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                print(
                    "clang_tidy_gate: malformed waiver line: %r" % raw.rstrip(),
                    file=sys.stderr,
                )
                sys.exit(2)
            waivers.add((parts[0], parts[1]))
    return waivers


def gate(lines, waivers, root):
    seen = {}
    for path, check, lineno, msg in parse_diagnostics(lines, root):
        seen.setdefault((path, check), (lineno, msg))
    new = {k: v for k, v in seen.items() if k not in waivers}
    for (path, check), (lineno, msg) in sorted(new.items()):
        print("%s:%d: NEW [%s] %s" % (path, lineno, check, msg))
    waived = len(seen) - len(new)
    if new:
        print(
            "clang_tidy_gate: %d new diagnostic kind(s) (%d waived). Fix them, "
            "or add '<path> <check-id>' lines to the waiver file if they are "
            "being deliberately grandfathered." % (len(new), waived),
            file=sys.stderr,
        )
        return 1
    print("clang_tidy_gate: clean (%d diagnostic kind(s) waived)" % waived)
    return 0


def self_check():
    sample = [
        "src/foo/a.cpp:10:5: warning: do not use X [bugprone-use-after-move]",
        "src/foo/a.cpp:99:5: warning: do not use X [bugprone-use-after-move]",
        "src/foo/b.cpp:3:1: warning: slow [performance-for-range-copy]",
        "/usr/include/c++/12/vector:1:1: warning: noisy [bugprone-something]",
        "random build output line",
        "src/foo/c.cpp:4:2: warning: diag [clang-diagnostic-unused-variable]",
    ]
    waivers = {("src/foo/a.cpp", "bugprone-use-after-move")}
    failures = []
    got = sorted(set((p, c) for p, c, _l, _m in parse_diagnostics(sample, os.getcwd())))
    want = [
        ("src/foo/a.cpp", "bugprone-use-after-move"),
        ("src/foo/b.cpp", "performance-for-range-copy"),
    ]
    if got != want:
        failures.append("parse: expected %s, got %s" % (want, got))
    if gate(sample, waivers | {("src/foo/b.cpp", "performance-for-range-copy")},
            os.getcwd()) != 0:
        failures.append("fully waived input should pass")
    if gate(sample, waivers, os.getcwd()) != 1:
        failures.append("unwaived diagnostic should fail")
    if failures:
        for f in failures:
            print("SELF-CHECK FAIL:", f, file=sys.stderr)
        return 1
    print("clang_tidy_gate self-check: passed")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--waivers", default="tools/clang_tidy_waivers.txt")
    ap.add_argument("--input", default="-", help="clang-tidy log (default: stdin)")
    ap.add_argument("--root", default=".", help="repo root for path normalization")
    ap.add_argument("--self-check", action="store_true")
    args = ap.parse_args()

    if args.self_check:
        return self_check()

    waivers = load_waivers(args.waivers)
    if args.input == "-":
        lines = sys.stdin.readlines()
    else:
        with open(args.input, encoding="utf-8") as f:
            lines = f.readlines()
    return gate(lines, waivers, os.path.abspath(args.root))


if __name__ == "__main__":
    sys.exit(main())
