// Coordinator-side entry for a multi-process commit run.
//
// The calling process hosts server 0 (and the clients); every other server
// runs as a fides_serverd process listening on its address. The unmodified
// engine pipeline drives the rounds through a SocketScheduler; when every
// round completes, the coordinator collects each peer's committed-state
// digest (log height, chained head hash, shard Merkle root) and broadcasts
// shutdown. The digests are what the cross-scheduler identity suite
// compares bit-for-bit against in-process and SimNet runs of the same
// batches.
#pragma once

#include "engine/pipeline.hpp"
#include "net/socket_scheduler.hpp"

namespace fides::net {

struct SocketRunResult {
  PipelineResult pipeline;
  /// Digests from the live remote servers, sorted by server id. A peer that
  /// crashed and never rejoined has no entry.
  std::vector<PeerDigest> digests;
};

/// Runs `batches` as commit rounds over sockets. The cluster must be the
/// same deterministic configuration every serverd was started with
/// (identical num_servers/items/protocol/pipeline/speculate/seed and a
/// shared round_log_dir). Throws on deployment errors (unreachable peers)
/// and propagates the pipeline's stall error.
SocketRunResult run_commit_rounds_over_sockets(
    Cluster& cluster, Protocol protocol,
    std::vector<std::vector<commit::SignedEndTxn>> batches, const SocketOptions& opts);

}  // namespace fides::net
