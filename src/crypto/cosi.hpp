// Collective Signing (CoSi) — Schnorr multisignatures (§2.2).
//
// A leader and N witnesses jointly sign one record in two rounds:
//   Announcement  leader -> witnesses : record
//   Commitment    witness -> leader   : V_i = v_i·G
//   Challenge     leader -> witnesses : c = H(ser(ΣV_i) ‖ record) mod n
//   Response      witness -> leader   : r_i = v_i + c·x_i mod n
// The aggregate (V = ΣV_i, r = Σr_i) is a constant-size signature verified
// against the aggregate public key X = ΣX_i as  r·G == V + c·X.
//
// The functions here are the pure-crypto core; the message choreography
// lives in the TFCommit protocol (commit/tfcommit.*) which interleaves these
// steps with 2PC voting exactly as Figure 7 of the paper shows.
#pragma once

#include <span>
#include <vector>

#include "crypto/schnorr.hpp"

namespace fides::crypto {

/// Aggregate collective signature: the aggregated Schnorr commitment V and
/// response r. Verification cost equals a single Schnorr verification.
struct CosiSignature {
  AffinePoint v;
  U256 r;

  friend bool operator==(const CosiSignature&, const CosiSignature&) = default;

  Bytes serialize() const;
  static std::optional<CosiSignature> deserialize(BytesView b);
};

/// A witness's round state: the Schnorr secret and its public commitment.
struct CosiCommitment {
  U256 secret;     ///< v_i — never leaves the witness
  AffinePoint v;   ///< V_i = v_i·G — sent to the leader
};

/// Commitment phase: derive v_i deterministically from (sk, record, round).
/// Distinct (record, round) pairs give distinct nonces.
CosiCommitment cosi_commit(const KeyPair& kp, BytesView record, std::uint64_t round);

/// Leader aggregation of witness commitments: V = ΣV_i.
AffinePoint cosi_aggregate_commitments(std::span<const AffinePoint> commitments);

/// Challenge c = H(ser(V) ‖ record) mod n. Every witness recomputes this to
/// catch a leader that lies about the challenge (Lemma 5 case analysis).
U256 cosi_challenge(const AffinePoint& aggregate_v, BytesView record);

/// Response phase: r_i = v_i + c·x_i mod n.
U256 cosi_respond(const KeyPair& kp, const U256& secret, const U256& challenge);

/// Leader aggregation of responses: r = Σr_i mod n.
U256 cosi_aggregate_responses(std::span<const U256> responses);

/// Full-signature verification given all participants' public keys.
bool cosi_verify(BytesView record, const CosiSignature& sig,
                 std::span<const PublicKey> public_keys);

/// Per-share check r_i·G == V_i + c·X_i. The leader uses this to pinpoint
/// the exact witness that sent a bogus response (Lemma 4: CoSi identifies
/// the precise misbehaving server).
bool cosi_verify_share(const AffinePoint& commitment, const U256& response,
                       const U256& challenge, const PublicKey& pk);

/// Returns the indices of all shares failing cosi_verify_share.
std::vector<std::size_t> cosi_find_faulty(std::span<const AffinePoint> commitments,
                                          std::span<const U256> responses,
                                          const U256& challenge,
                                          std::span<const PublicKey> public_keys);

}  // namespace fides::crypto
