// A small fixed-size worker pool for intra-round parallelism.
//
// The commit-round driver uses this to run per-cohort phase work (votes,
// challenge responses, decision application) genuinely concurrently across
// servers, and the Merkle layer uses it for parallel tree construction —
// turning the Figure 14 scaling story (more servers => parallel Merkle work)
// from an analytical model into a measurable wall-clock effect.
//
// Design constraints:
//   * parallel_for(n, body) must produce results identical to a serial loop:
//     each index is executed exactly once and the caller blocks until every
//     index has finished, so callers can write into pre-sized slots by index
//     and observe all writes afterwards (the join is a full happens-before
//     edge).
//   * The calling thread participates in the work, so a pool with zero or
//     one workers degrades gracefully to a serial loop and nested
//     parallel_for calls cannot deadlock (the nested caller drains its own
//     indices even if all workers are busy).
//   * Exceptions thrown by the body are captured and the first one is
//     rethrown on the calling thread after the loop completes.
//
// Concurrency protocol (checked by clang -Wthread-safety in the .cpp): the
// task queue and the stopping flag are GUARDED_BY the pool mutex; the worker
// vector is confined to the constructor (spawn) and destructor (join);
// parallel_for's claim/done counters are atomics, with the final "all done"
// edge published under the loop mutex so the waiter's condition variable
// never misses the last notify.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace fides::common {

class ThreadPool {
 public:
  /// `num_threads` is the total number of threads that execute a
  /// parallel_for, *including* the calling thread — so N-1 workers are
  /// spawned. 0 means "one per hardware thread". 1 spawns no workers and
  /// runs everything inline on the caller, which keeps single-thread runs
  /// bit-identical to a plain loop and easy to debug.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 when the pool runs everything inline).
  std::size_t size() const;

  /// Threads a parallel_for executes on: workers plus the calling thread.
  std::size_t concurrency() const { return size() + 1; }

  /// True when parallel_for actually fans out to workers.
  bool parallel() const { return size() > 0; }

  /// Fire-and-forget task submission. The destructor drains the queue.
  void submit(std::function<void()> task);

  /// Runs body(0) .. body(n-1), each exactly once, returning only after all
  /// have completed. Work is claimed dynamically (atomic index), and the
  /// calling thread participates. Rethrows the first captured exception.
  void parallel_for(std::size_t n, std::function<void(std::size_t)> body);

 private:
  struct Impl;
  Impl* impl_;  // confined(ctor): set once; the Impl synchronizes internally
};

}  // namespace fides::common
