// Hybrid (Lamport-style) commit timestamps.
//
// The paper (§4.1, Table 1) lets clients assign commit timestamps using any
// totally ordered scheme, e.g. a Lamport clock of <client_id : client_time>.
// We implement exactly that: a logical counter with the client id as a
// tiebreaker, giving a strict total order across all clients.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "common/ids.hpp"

namespace fides {

struct Timestamp {
  std::uint64_t logical{0};  ///< client-local logical clock
  std::uint32_t client{0};   ///< client id tiebreaker

  friend constexpr auto operator<=>(const Timestamp&, const Timestamp&) = default;

  constexpr bool is_zero() const { return logical == 0 && client == 0; }
};

/// The zero timestamp: "never accessed".
inline constexpr Timestamp kTimestampZero{};

std::string to_string(const Timestamp& ts);

/// Client-side timestamp generator. Monotonic per client; merging a remote
/// observation keeps the clock ahead of everything the client has seen
/// (standard Lamport-clock update rule).
class TimestampOracle {
 public:
  explicit TimestampOracle(ClientId client) : client_(client) {}

  /// Returns a timestamp strictly greater than all previously issued or
  /// observed ones.
  Timestamp next();

  /// Folds in a timestamp observed from a server or another client.
  void observe(const Timestamp& ts);

 private:
  ClientId client_;
  std::uint64_t logical_{0};
};

}  // namespace fides
