// Blocks of the tamper-proof log (Table 1).
//
// Each block stores: the transactions with their commit timestamps and
// read/write sets; the per-transaction decision; the Merkle roots of the
// shards involved (Σroots); the hash of the previous block; and the
// collective signature of all servers.
//
// The paper presents one transaction per block for exposition and batches
// ~100 non-conflicting transactions per block in the evaluation (§4.6, §6);
// we carry a vector of transactions and, matching Table 1, a single
// block-level decision: a batch commits or aborts as a unit (a cohort that
// rejects any transaction aborts the block; the coordinator's batcher only
// groups non-conflicting transactions, so the all-commit case dominates).
//
// Two byte representations matter:
//   signing_bytes() — the block minus the co-sign; this is the record the
//                     CoSi rounds sign and the auditor re-verifies.
//   serialize()     — the full block; its SHA-256 is the hash pointer the
//                     next block's prev_hash links to.
#pragma once

#include <optional>
#include <vector>

#include "crypto/cosi.hpp"
#include "txn/transaction.hpp"

namespace fides::ledger {

/// One shard root contribution: which server's datastore, and the Merkle
/// root reflecting the block's updates on that shard.
struct ShardRoot {
  ServerId server;
  crypto::Digest root;

  friend bool operator==(const ShardRoot&, const ShardRoot&) = default;
};

enum class Decision : std::uint8_t {
  kAbort = 0,
  kCommit = 1,
};

struct Block {
  std::uint64_t height{0};
  std::vector<txn::Transaction> txns;
  Decision decision{Decision::kAbort};
  /// The servers whose collective signature covers this block. Under the
  /// global protocol (§4.3) this is every server; under group commit (§4.6)
  /// it is the group that terminated the batch. Part of the signed bytes, so
  /// a malicious coordinator cannot shrink the witness set after the fact.
  std::vector<ServerId> signers;
  /// Σroots — sorted by server id; present only for involved servers on a
  /// committed block. An aborted block leaves roots missing, which is
  /// exactly the audit signal of §4.3.2.
  std::vector<ShardRoot> roots;
  crypto::Digest prev_hash;
  std::optional<crypto::CosiSignature> cosign;

  bool committed() const { return decision == Decision::kCommit; }

  const crypto::Digest* root_of(ServerId server) const;
  void set_root(ServerId server, const crypto::Digest& root);

  /// Canonical bytes without the co-sign: the CoSi record.
  Bytes signing_bytes() const;

  /// Canonical bytes of the round's *vote identity*: the transactions and
  /// the witness set, without height/prev-hash/decision/roots. This is the
  /// record a cohort derives its deterministic CoSi nonce from — the part
  /// of a partial block that is already final when a speculative opening is
  /// issued (the chain position is only pinned once the previous block
  /// decides), so gated and speculative openings of the same round yield
  /// bit-identical commitments and hence bit-identical co-signs.
  Bytes vote_bytes() const;

  /// Canonical bytes of the full block (co-sign included if present).
  Bytes serialize() const;

  /// SHA-256 of serialize(): the chain hash pointer.
  crypto::Digest digest() const;

  static std::optional<Block> deserialize(BytesView b);

  friend bool operator==(const Block&, const Block&) = default;
};

/// The group-commit signing view (§4.6): the block with height zeroed and the
/// prev-hash pointer cleared. A group co-signs a block *before* OrdServ
/// assigns its chain position ("the coordinators of the groups do not fill in
/// the hash of the previous block, rather it is filled by the OrdServ"), so
/// every verifier of a sequenced entry — stream validators, delivering
/// servers, recovery replay — must check the inner co-sign over exactly these
/// bytes, plus the outer OrdServ hash chain.
Bytes unchained_signing_bytes(const Block& block);

}  // namespace fides::ledger
