// Log checkpointing (§3.3: "optimizations such as checkpointing can be used
// to minimize the log storage space at each server").
//
// A checkpoint summarizes the log prefix [0, height): the digest of its last
// block and the latest Merkle root of every shard at that point. Once all
// servers collectively sign a checkpoint, the prefix can be archived and
// both audits and chain validation can start from the checkpoint instead of
// genesis — the co-sign plays the role the genesis zero-hash played.
#pragma once

#include <optional>

#include "ledger/chain_validation.hpp"
#include "ledger/log.hpp"

namespace fides::ledger {

struct Checkpoint {
  std::uint64_t height{0};     ///< blocks [0, height) are summarized
  crypto::Digest head_hash;    ///< digest of block height-1 (zero if height 0)
  std::vector<ShardRoot> roots;  ///< latest root per server as of the prefix
  std::vector<ServerId> signers;
  std::optional<crypto::CosiSignature> cosign;

  /// Canonical bytes without the co-sign (the CoSi record).
  Bytes signing_bytes() const;
  Bytes serialize() const;
  static std::optional<Checkpoint> deserialize(BytesView b);

  friend bool operator==(const Checkpoint&, const Checkpoint&) = default;
};

/// CoSi round id under which a checkpoint at `height` is co-signed. Nonces
/// derive from (key, record, round), so the direct and simulated drivers
/// must share this definition for their signature bytes to stay
/// bit-identical.
constexpr std::uint64_t checkpoint_cosi_round(std::uint64_t height) {
  return 0xC0DE0000ULL + height;
}

/// Builds the (unsigned) checkpoint summarizing `log` as of its full length:
/// head hash plus each server's most recent committed root.
Checkpoint make_checkpoint(std::span<const Block> log,
                           std::vector<ServerId> signers);

/// Verifies the checkpoint's collective signature under the full membership.
bool validate_checkpoint(const Checkpoint& cp,
                         std::span<const crypto::PublicKey> server_keys);

/// Validates the suffix of a log against a trusted checkpoint: the block at
/// cp.height must chain from cp.head_hash and every suffix block must carry
/// a valid co-sign. `blocks` is the full log; blocks before cp.height are
/// not inspected (they may have been archived away — pass what remains).
ChainCheckResult validate_chain_from(const Checkpoint& cp,
                                     std::span<const Block> blocks,
                                     std::span<const crypto::PublicKey> server_keys);

}  // namespace fides::ledger
