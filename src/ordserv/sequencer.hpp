// OrdServ — the block ordering service (§4.6, Figure 9).
//
// Group coordinators publish blocks *without* hash pointers; OrdServ
// atomically broadcasts a single stream, assigning global heights and
// chaining the blocks ("the coordinators of the groups do not fill in the
// hash of the previous block, rather it is filled by the OrdServ").
//
// Ordering contract: submission order is preserved between dependent blocks
// (groups with overlapping servers, or blocks touching common items);
// independent blocks may be ordered arbitrarily — we keep FIFO, which
// trivially satisfies both cases, and expose the dependency metadata so
// tests can verify the contract (the ParBlock-style dependency tracking the
// paper plans to integrate).
//
// OrdServ also hands out per-block epochs (EpochCounter below): group
// coordinators publishing through one sequencer draw their CoSi round ids
// from its counter, giving unique nonce domains across concurrent groups.
// A Cluster embeds its own EpochCounter for the round engine's wire tags —
// a separate domain; engine epochs only need uniqueness within that
// cluster's transport. Epoch reservation and stream submission are
// thread-safe — multiple group coordinators may race.
//
// The paper suggests PBFT among coordinators or Apache Kafka as concrete
// OrdServ instances; this in-process sequencer implements the same abstract
// contract — a single consistently ordered, dependency-respecting stream —
// which is all §4.6 requires of it.
#pragma once

#include <atomic>
#include <deque>
#include <unordered_map>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "ledger/block.hpp"
#include "ordserv/group.hpp"

namespace fides::ordserv {

/// Thread-safe monotone epoch source. reserve() hands out 1, 2, 3, ... —
/// each caller gets a distinct epoch, with no gaps, under any interleaving.
class EpochCounter {
 public:
  std::uint64_t reserve() { return next_.fetch_add(1, std::memory_order_relaxed) + 1; }

  /// Epochs handed out so far.
  std::uint64_t issued() const { return next_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> next_{0};
};

struct SequencedBlock {
  ledger::Block block;       ///< height/prev_hash filled by the sequencer
  ServerGroup group;         ///< who terminated it
  std::vector<std::uint64_t> depends_on;  ///< heights of dependency blocks
};

class Sequencer {
 public:
  /// Accepts a block published by a group coordinator. `block.height` and
  /// `block.prev_hash` are overwritten; the co-sign must already cover the
  /// transactions (the signed bytes bind txns + roots + decision + signers;
  /// see note below). Returns the assigned global height. Thread-safe:
  /// concurrent submissions serialize into one consistent chain.
  std::uint64_t submit(ledger::Block block, ServerGroup group) EXCLUDES(mutex_);

  /// The per-block epoch source (see EpochCounter).
  EpochCounter& epochs() { return epochs_; }

  /// Blocks sequenced so far, in broadcast order. ONLY safe once submitters
  /// are quiescent (the harness's post-run inspection) — it hands out an
  /// unguarded reference into the guarded stream, which the analysis cannot
  /// express; concurrent readers must use at() / fetch_new() instead.
  const std::deque<SequencedBlock>& stream() const NO_THREAD_SAFETY_ANALYSIS {
    return stream_;
  }

  /// The sequenced entry at `height`. Thread-safe against concurrent
  /// submit: the deque never reallocates elements on push_back, so the
  /// returned reference stays valid and immutable (entries are never
  /// mutated after sequencing). Throws std::out_of_range beyond the head.
  const SequencedBlock& at(std::uint64_t height) const EXCLUDES(mutex_);

  /// Drains blocks not yet delivered to `server` (at-most-once per server).
  /// Thread-safe against concurrent submit and fetch_new calls.
  std::vector<const SequencedBlock*> fetch_new(ServerId server) EXCLUDES(mutex_);

  std::size_t size() const EXCLUDES(mutex_);

 private:
  mutable common::Mutex mutex_;
  EpochCounter epochs_;  // confined(shared-atomics): one monotone atomic
  std::deque<SequencedBlock> stream_ GUARDED_BY(mutex_);
  crypto::Digest head_hash_ GUARDED_BY(mutex_){};  // zero for genesis
  std::unordered_map<ItemId, std::uint64_t> last_touch_
      GUARDED_BY(mutex_);  // item -> height
  std::unordered_map<std::uint32_t, std::size_t> cursor_
      GUARDED_BY(mutex_);  // server -> next idx
};

}  // namespace fides::ordserv
