// System-level property tests (parameterized sweeps):
//   P1. Honest runs always audit clean, across cluster sizes, batch sizes,
//       versioning modes, and seeds.
//   P2. Replaying the adopted log reproduces exactly the datastore state of
//       every honest server (log completeness / durability).
//   P3. Any single injected fault is detected by the audit (fault-detection
//       totality — the paper's central claim: n-1 faulty servers tolerated,
//       every failure detectable).
//   P4. 2PC and TFCommit reach identical commit/abort decisions on identical
//       histories (TFCommit adds trust-freedom, not different semantics).
#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

#include "audit/auditor.hpp"
#include "workload/driver.hpp"

namespace fides {
namespace {

struct SweepParam {
  std::uint32_t servers;
  std::size_t batch;
  store::VersioningMode mode;
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto& p = info.param;
  return "s" + std::to_string(p.servers) + "_b" + std::to_string(p.batch) + "_" +
         (p.mode == store::VersioningMode::kMulti ? "multi" : "single") + "_seed" +
         std::to_string(p.seed);
}

ClusterConfig cluster_config(const SweepParam& p) {
  ClusterConfig cfg;
  cfg.num_servers = p.servers;
  cfg.items_per_shard = 64;
  cfg.versioning = p.mode;
  cfg.seed = p.seed;
  cfg.sign_data_path = false;  // keep sweeps fast; commit path stays signed
  return cfg;
}

/// Runs a workload through the cluster; returns committed transactions.
std::vector<txn::Transaction> run_workload(Cluster& cluster, std::size_t total,
                                           std::size_t batch, std::uint64_t seed) {
  Client& client = cluster.make_client();
  workload::YcsbWorkload wl(
      {}, cluster.num_servers() * cluster.config().items_per_shard, seed);
  std::vector<txn::Transaction> committed;
  std::size_t remaining = total;
  while (remaining > 0) {
    commit::BatchBuilder builder(batch);
    const std::size_t n = std::min(batch, remaining);
    for (std::size_t i = 0; i < n; ++i) builder.enqueue(wl.run_transaction(client));
    remaining -= n;
    while (!builder.empty()) {
      const auto selected = builder.next_batch();
      const auto metrics = cluster.run_block(selected);
      if (metrics.decision == ledger::Decision::kCommit) {
        for (const auto& s : selected) committed.push_back(s.request.txn);
      }
    }
  }
  return committed;
}

class HonestSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(HonestSweep, AuditsCleanAndReplayMatchesDatastore) {
  Cluster cluster(cluster_config(GetParam()));
  run_workload(cluster, 24, GetParam().batch, GetParam().seed);

  // P1: audit clean.
  audit::Auditor auditor(cluster);
  const auto report = auditor.run();
  EXPECT_TRUE(report.clean()) << report.to_string();

  // P2: replay the adopted log and compare to every shard's live state.
  audit::AuditReport scratch;
  const auto log = auditor.collect_and_select(scratch);
  std::map<ItemId, Bytes> replay;
  for (const auto& block : log) {
    if (!block.committed()) continue;
    for (const auto& t : block.txns) {
      for (const auto& w : t.rw.writes) replay[w.id] = w.new_value;
    }
  }
  for (const auto& [item, value] : replay) {
    const Server& owner = cluster.server(cluster.owner_of(item));
    EXPECT_EQ(owner.shard().peek(item).value, value) << "item " << item;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HonestSweep,
    ::testing::Values(SweepParam{3, 1, store::VersioningMode::kMulti, 1},
                      SweepParam{3, 8, store::VersioningMode::kMulti, 2},
                      SweepParam{4, 4, store::VersioningMode::kSingle, 3},
                      SweepParam{5, 8, store::VersioningMode::kMulti, 4},
                      SweepParam{7, 6, store::VersioningMode::kSingle, 5},
                      SweepParam{2, 2, store::VersioningMode::kMulti, 6}),
    param_name);

// --- P3: single-fault detection totality ----------------------------------------

enum class FaultKind {
  kGarbageRead,
  kSkipWrite,
  kCorruptAfterCommit,
  kTamperLogBlock,
  kReorderLog,
  kTruncateLog,
};

struct FaultParam {
  FaultKind kind;
  std::uint32_t victim_server;
  std::uint64_t seed;
};

std::string fault_name(const ::testing::TestParamInfo<FaultParam>& info) {
  static const std::map<FaultKind, std::string> names = {
      {FaultKind::kGarbageRead, "GarbageRead"},
      {FaultKind::kSkipWrite, "SkipWrite"},
      {FaultKind::kCorruptAfterCommit, "CorruptAfterCommit"},
      {FaultKind::kTamperLogBlock, "TamperLog"},
      {FaultKind::kReorderLog, "ReorderLog"},
      {FaultKind::kTruncateLog, "TruncateLog"},
  };
  return names.at(info.param.kind) + "_v" + std::to_string(info.param.victim_server) +
         "_seed" + std::to_string(info.param.seed);
}

class FaultSweep : public ::testing::TestWithParam<FaultParam> {};

TEST_P(FaultSweep, SingleFaultAlwaysDetectedAndAttributed) {
  const FaultParam& p = GetParam();
  ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.items_per_shard = 64;
  cfg.versioning = store::VersioningMode::kMulti;
  cfg.seed = p.seed;
  cfg.sign_data_path = false;
  Cluster cluster(cfg);
  Server& victim = cluster.server(ServerId{p.victim_server});

  // Pick an item owned by the victim so execution/datastore faults bite.
  const ItemId victim_item = victim.shard().item_ids()[3];

  // Pre-fault honest history so reads/writes of the item exist in the log.
  Client& client = cluster.make_client();
  auto one_txn = [&](const std::string& tag) {
    ClientTxn txn = client.begin();
    client.read(txn, victim_item);
    client.write(txn, victim_item, to_bytes(tag));
    return client.end(std::move(txn));
  };
  ASSERT_EQ(cluster.run_block({one_txn("t0")}).decision, ledger::Decision::kCommit);

  switch (p.kind) {
    case FaultKind::kGarbageRead:
      victim.faults().read_fault = ReadFault::kGarbageValue;
      victim.faults().read_fault_item = victim_item;
      break;
    case FaultKind::kSkipWrite:
      victim.faults().skip_write_item = victim_item;
      break;
    case FaultKind::kCorruptAfterCommit:
      victim.faults().corrupt_after_commit_item = victim_item;
      break;
    default:
      break;  // log faults injected after the fact
  }

  // Two more blocks: the fault (if execution/datastore) lands in history.
  ASSERT_EQ(cluster.run_block({one_txn("t1")}).decision, ledger::Decision::kCommit);
  ASSERT_EQ(cluster.run_block({one_txn("t2")}).decision, ledger::Decision::kCommit);

  switch (p.kind) {
    case FaultKind::kTamperLogBlock: {
      ledger::Block bad = victim.log().at(1);
      bad.txns[0].rw.writes[0].new_value = to_bytes("rewritten");
      victim.log().tamper_block(1, bad);
      break;
    }
    case FaultKind::kReorderLog:
      victim.log().reorder(0, 2);
      break;
    case FaultKind::kTruncateLog:
      victim.log().truncate_tail(1);
      break;
    default:
      break;
  }

  audit::Auditor auditor(cluster);
  const auto report = auditor.run();
  ASSERT_FALSE(report.clean()) << "fault escaped the audit";

  // Attribution: some violation names the victim.
  bool attributed = false;
  for (const auto& v : report.violations) {
    attributed |= v.server == ServerId{p.victim_server};
  }
  EXPECT_TRUE(attributed) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    AllFaults, FaultSweep,
    ::testing::Values(FaultParam{FaultKind::kGarbageRead, 0, 11},
                      FaultParam{FaultKind::kGarbageRead, 2, 12},
                      FaultParam{FaultKind::kSkipWrite, 0, 13},
                      FaultParam{FaultKind::kSkipWrite, 1, 14},
                      FaultParam{FaultKind::kCorruptAfterCommit, 1, 15},
                      FaultParam{FaultKind::kCorruptAfterCommit, 2, 16},
                      FaultParam{FaultKind::kTamperLogBlock, 0, 17},
                      FaultParam{FaultKind::kTamperLogBlock, 1, 18},
                      FaultParam{FaultKind::kReorderLog, 2, 19},
                      FaultParam{FaultKind::kReorderLog, 0, 20},
                      FaultParam{FaultKind::kTruncateLog, 1, 21},
                      FaultParam{FaultKind::kTruncateLog, 2, 22}),
    fault_name);

// --- Skewed workloads: zipfian access patterns stay audit-clean --------------------

TEST(ZipfianWorkload, HonestSkewedRunAuditsClean) {
  ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.items_per_shard = 64;
  cfg.versioning = store::VersioningMode::kMulti;
  cfg.sign_data_path = false;
  Cluster cluster(cfg);
  Client& client = cluster.make_client();

  workload::WorkloadConfig wcfg;
  wcfg.distribution = workload::Distribution::kZipfian;
  wcfg.zipf_theta = 0.99;
  workload::YcsbWorkload wl(wcfg, 192, 77);

  std::size_t committed = 0;
  for (int block = 0; block < 6; ++block) {
    wl.begin_batch();
    std::vector<commit::SignedEndTxn> batch;
    for (int i = 0; i < 4; ++i) batch.push_back(wl.run_transaction(client));
    const auto metrics = cluster.run_block(std::move(batch));
    if (metrics.decision == ledger::Decision::kCommit) committed += 4;
  }
  // Disjoint batches make skew harmless within a block; most blocks commit.
  EXPECT_GT(committed, 0u);
  audit::Auditor auditor(cluster);
  const auto report = auditor.run();
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(ZipfianWorkload, DisjointBatchesNeverConflictInsideABlock) {
  workload::WorkloadConfig wcfg;
  wcfg.distribution = workload::Distribution::kZipfian;
  wcfg.zipf_theta = 0.99;  // heavy skew: without the mechanism, hot keys repeat
  workload::YcsbWorkload wl(wcfg, 1000, 5);
  for (int round = 0; round < 10; ++round) {
    wl.begin_batch();
    std::unordered_set<ItemId> seen;
    for (int t = 0; t < 20; ++t) {
      for (const ItemId item : wl.pick_items()) {
        EXPECT_TRUE(seen.insert(item).second) << "duplicate item " << item;
      }
    }
  }
}

// --- P4: decision equivalence between 2PC and TFCommit ----------------------------

TEST(ProtocolEquivalence, SameDecisionsOnSameHistory) {
  for (const std::uint64_t seed : {31ULL, 32ULL, 33ULL}) {
    std::vector<ledger::Decision> decisions_2pc, decisions_tfc;
    for (const Protocol proto : {Protocol::kTwoPhaseCommit, Protocol::kTfCommit}) {
      ClusterConfig cfg;
      cfg.num_servers = 3;
      cfg.items_per_shard = 16;  // small: force some conflicts
      cfg.protocol = proto;
      cfg.seed = seed;
      cfg.sign_data_path = false;
      Cluster cluster(cfg);
      Client& client = cluster.make_client();
      workload::YcsbWorkload wl({}, 48, seed);
      auto& out = proto == Protocol::kTwoPhaseCommit ? decisions_2pc : decisions_tfc;
      for (int i = 0; i < 10; ++i) {
        out.push_back(cluster.run_block({wl.run_transaction(client)}).decision);
      }
    }
    EXPECT_EQ(decisions_2pc, decisions_tfc) << "seed " << seed;
  }
}

}  // namespace
}  // namespace fides
