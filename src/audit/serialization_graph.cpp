#include "audit/serialization_graph.hpp"

#include <unordered_map>

namespace fides::audit {

namespace {

/// Last access bookkeeping per item while scanning the log in order.
struct ItemAccess {
  std::vector<std::size_t> readers_since_last_write;  // node indices
  std::optional<std::size_t> last_writer;             // node index
};

}  // namespace

SerializationGraph SerializationGraph::build(std::span<const ledger::Block> log) {
  SerializationGraph g;
  std::unordered_map<ItemId, ItemAccess> access;

  auto node_index_of = [&](TxnRef ref) {
    // Nodes are appended in scan order, so the latest ref is always at the
    // back; lookups during the scan only need "current node".
    (void)ref;
    return g.nodes_.size() - 1;
  };

  for (std::size_t b = 0; b < log.size(); ++b) {
    const ledger::Block& block = log[b];
    if (!block.committed()) continue;
    for (std::size_t t = 0; t < block.txns.size(); ++t) {
      const txn::Transaction& txn = block.txns[t];
      g.nodes_.push_back(TxnRef{b, t});
      g.adjacency_.emplace_back();
      const std::size_t me = node_index_of(TxnRef{b, t});

      for (const auto& r : txn.rw.reads) {
        auto& a = access[r.id];
        if (a.last_writer && *a.last_writer != me) {
          // WR: the writer precedes this reader.
          g.edges_.push_back({g.nodes_[*a.last_writer], TxnRef{b, t}, r.id,
                              ConflictKind::kWriteRead});
          g.adjacency_[*a.last_writer].push_back(me);
        }
        a.readers_since_last_write.push_back(me);
      }
      for (const auto& w : txn.rw.writes) {
        auto& a = access[w.id];
        if (a.last_writer && *a.last_writer != me) {
          g.edges_.push_back({g.nodes_[*a.last_writer], TxnRef{b, t}, w.id,
                              ConflictKind::kWriteWrite});
          g.adjacency_[*a.last_writer].push_back(me);
        }
        for (const std::size_t reader : a.readers_since_last_write) {
          if (reader == me) continue;
          // RW: readers of the previous version precede this writer.
          g.edges_.push_back(
              {g.nodes_[reader], TxnRef{b, t}, w.id, ConflictKind::kReadWrite});
          g.adjacency_[reader].push_back(me);
        }
        a.last_writer = me;
        a.readers_since_last_write.clear();
      }
    }
  }
  return g;
}

bool SerializationGraph::has_cycle() const {
  enum class Mark : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<Mark> mark(nodes_.size(), Mark::kWhite);

  // Iterative DFS with an explicit stack (logs can be long).
  for (std::size_t root = 0; root < nodes_.size(); ++root) {
    if (mark[root] != Mark::kWhite) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack{{root, 0}};
    mark[root] = Mark::kGrey;
    while (!stack.empty()) {
      auto& [node, next_child] = stack.back();
      if (next_child < adjacency_[node].size()) {
        const std::size_t child = adjacency_[node][next_child++];
        if (mark[child] == Mark::kGrey) return true;
        if (mark[child] == Mark::kWhite) {
          mark[child] = Mark::kGrey;
          stack.emplace_back(child, 0);
        }
      } else {
        mark[node] = Mark::kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

std::vector<ConflictEdge> SerializationGraph::timestamp_order_violations(
    std::span<const ledger::Block> log) const {
  std::vector<ConflictEdge> bad;
  for (const auto& e : edges_) {
    const Timestamp from_ts = log[e.from.block].txns[e.from.index].commit_ts;
    const Timestamp to_ts = log[e.to.block].txns[e.to.index].commit_ts;
    if (!(from_ts < to_ts)) bad.push_back(e);
  }
  return bad;
}

}  // namespace fides::audit
