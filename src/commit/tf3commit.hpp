// Non-blocking TFCommit — the paper's §4.3.1 future-work extension.
//
// "TFCommit, similar to 2PC, can be blocking if either the coordinator or
// any cohort fails. TFCommit can be made non-blocking by adding another
// phase that makes the chosen value available, as in the case of Three
// Phase Commit [39]."
//
// TF3Commit inserts a <PreDecision> broadcast between the vote and
// challenge phases: once every cohort has acknowledged (persisted) the
// chosen decision and the completed block, the decision is recoverable —
// if the coordinator fails anywhere after that point, any cohort can take
// over, collect the persisted pre-decisions, and finish the CoSi rounds
// itself. If the coordinator fails *before* every cohort persisted the
// pre-decision, the recovery coordinator safely aborts the round (no cohort
// can have applied anything: application only happens on a co-signed
// decision).
//
// The CoSi half is unaffected: the recovered round co-signs the *same*
// block the failed coordinator distributed, so the aggregate signature and
// the audit trail are indistinguishable from a failure-free round.
#pragma once

#include "commit/tfcommit.hpp"

namespace fides::commit {

/// The extra phase's message: the completed block (decision + Σroots) ahead
/// of the challenge.
struct PreDecisionMsg {
  Block block;

  Bytes serialize() const;
  static std::optional<PreDecisionMsg> deserialize(BytesView b);
};

/// Cohort acknowledgement that the pre-decision is persisted.
struct PreDecisionAck {
  ServerId cohort;
  bool accepted{false};
};

/// Where a coordinator crash is injected, for tests and examples.
enum class CrashPoint : std::uint8_t {
  kNone,
  kAfterVotes,        ///< before any cohort saw the pre-decision (round aborts)
  kAfterPreDecision,  ///< decision recoverable: takeover must commit it
};

/// Cohort-side state for the extension: wraps the plain TFCommit cohort and
/// adds pre-decision persistence. One per server.
class Tf3CommitCohort {
 public:
  explicit Tf3CommitCohort(TfCommitCohort& inner) : inner_(&inner) {}

  TfCommitCohort& inner() { return *inner_; }

  /// Persists the pre-decision (crash-survivable state in a real system).
  PreDecisionAck handle_pre_decision(const PreDecisionMsg& msg);

  const std::optional<Block>& persisted_pre_decision() const { return persisted_; }

  /// Clears round state (called when the decision finalizes).
  void finish_round() { persisted_.reset(); }

 private:
  TfCommitCohort* inner_;
  std::optional<Block> persisted_;
};

/// Outcome of a recovery takeover.
struct RecoveryOutcome {
  bool recovered_decision{false};  ///< true: the persisted block was completed
  TfCommitOutcome outcome;         ///< valid iff recovered_decision
};

/// Recovery: a surviving cohort polls every reachable cohort for its
/// persisted pre-decision. If any cohort persisted one, the block is
/// completed (fresh CoSi round over the same block, led by the recovery
/// coordinator); if none did, the round is declared aborted — safe because
/// no server applies state without a co-signed decision block.
///
/// `cohorts` are the surviving cohorts' extension states (the crashed
/// coordinator excluded), `ids`/`keys` their identities, `keypairs` their
/// signing keys (the recovery coordinator acts with cohort 0's identity).
RecoveryOutcome recover_round(std::span<Tf3CommitCohort* const> cohorts,
                              std::span<const ServerId> ids,
                              std::span<const crypto::PublicKey> keys,
                              std::span<const crypto::KeyPair* const> keypairs,
                              std::uint64_t recovery_round_id);

}  // namespace fides::commit
