// SimNet — a deterministic discrete-event simulated network.
//
// FoundationDB-style simulation testing for the message layer: instead of
// delivering an envelope by direct function call, a sender schedules it as
// an event on a virtual clock. Per-link delays are drawn from a seeded RNG,
// so delivery *order* is a deterministic function of the seed — and the
// fuzzer can enumerate thousands of distinct schedules (reorderings, losses
// with retransmission, duplicates, partition/heal windows) simply by
// enumerating seeds.
//
// Determinism contract: SimNet is single-threaded and every random draw
// happens in a fixed program order, so two runs with the same seed and the
// same send sequence produce byte-identical event traces. The running trace
// hash (SHA-256 folded over every SEND/DROP/DUP/HOLD/DELIVER event,
// including payload digests) is the reproduction token: equal hashes mean
// equal schedules, and a failing fuzz case reproduces from its seed alone.
#pragma once

#include <functional>
#include <queue>

#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "fides/transport.hpp"

namespace fides::sim {

class SimNet {
 public:
  struct Stats {
    std::uint64_t sent{0};        ///< logical messages handed to send()
    std::uint64_t delivered{0};   ///< delivery callbacks fired (incl. dups)
    std::uint64_t dropped{0};     ///< copies lost; each costs one retransmit
    std::uint64_t duplicated{0};  ///< extra copies delivered
    std::uint64_t held{0};        ///< copies delayed by an active partition
  };

  /// Delivery callback: the receiver-side dispatch. `dst` is the addressee;
  /// `env` is the (signed) envelope as sent — SimNet never mutates payloads.
  using DeliverFn =
      std::function<void(NodeId src, NodeId dst, const Envelope& env)>;

  explicit SimNet(SimNetConfig config);

  /// Schedules delivery of `env` from src to dst. Draws delay/drop/dup
  /// choices from the seeded RNG; a dropped copy is retransmitted after the
  /// configured timeout (bounded by max_attempts, last attempt always
  /// delivered), and traffic crossing an active partition is held until the
  /// heal time. May be called from inside a delivery callback.
  void send(NodeId src, NodeId dst, Envelope env);

  /// Pops events in virtual-time order, invoking `on_deliver` for each
  /// delivery, until the queue drains. Handlers may call send() to schedule
  /// further traffic — the loop keeps going until the network is quiescent.
  void run(const DeliverFn& on_deliver);

  /// Virtual time of the most recently processed event.
  double now_us() const { return now_us_; }

  const Stats& stats() const { return stats_; }

  /// Running hash over every scheduled and processed event. Two runs with
  /// the same seed and send sequence yield the same hash; any divergence
  /// (different payload bytes, different order, different fault choices)
  /// changes it.
  const crypto::Digest& trace_hash() const { return trace_hash_; }

  const SimNetConfig& config() const { return config_; }

 private:
  struct Event {
    double at_us{0};
    std::uint64_t seq{0};  ///< scheduling order; total-orders equal times
    NodeId src;
    NodeId dst;
    Envelope env;
    crypto::Digest payload_digest;  ///< computed once per send()
    bool duplicate{false};
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at_us != b.at_us) return a.at_us > b.at_us;
      return a.seq > b.seq;
    }
  };

  double draw_delay();
  /// Earliest time >= `t` at which src->dst traffic is not partitioned.
  double release_time(NodeId src, NodeId dst, double t, bool& was_held) const;
  void schedule(double at_us, NodeId src, NodeId dst, Envelope env,
                const crypto::Digest& payload_digest, bool duplicate);
  /// `payload_digest` = sha256 of the envelope payload, computed once per
  /// send (SimNet never mutates payloads).
  void fold_event(const char* tag, double at_us, NodeId src, NodeId dst,
                  const Envelope& env, const crypto::Digest& payload_digest);

  SimNetConfig config_;
  Rng rng_;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::uint64_t next_seq_{0};
  double now_us_{0};
  Stats stats_;
  crypto::Digest trace_hash_;
};

}  // namespace fides::sim
