// Tests for the non-blocking TFCommit extension (TF3Commit): pre-decision
// persistence, coordinator-crash recovery, and the 3PC safety rules.
#include <gtest/gtest.h>

#include "commit/tf3commit.hpp"

namespace fides::commit {
namespace {

constexpr std::uint32_t kServers = 4;

class Tf3CommitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (std::uint32_t i = 0; i < kServers; ++i) {
      keypairs.push_back(crypto::KeyPair::deterministic(i));
      keys.push_back(keypairs.back().public_key());
      shards.push_back(std::make_unique<store::Shard>(
          ShardId{i}, store::items_for_shard(ShardId{i}, kServers, 16),
          to_bytes("init"), store::VersioningMode::kSingle));
      cohort_ids.push_back(ServerId{i});
    }
    for (std::uint32_t i = 0; i < kServers; ++i) {
      inner.push_back(
          std::make_unique<TfCommitCohort>(ServerId{i}, keypairs[i], *shards[i]));
      cohorts.push_back(std::make_unique<Tf3CommitCohort>(*inner.back()));
    }
  }

  txn::Transaction make_txn(std::uint64_t ts, std::vector<ItemId> items) {
    txn::Transaction t;
    t.id = TxnId{0, ts};
    t.commit_ts = Timestamp{ts, 0};
    for (const ItemId item : items) {
      const auto& rec = shards[item % kServers]->peek(item);
      t.rw.reads.push_back(txn::ReadEntry{item, rec.value, rec.rts, rec.wts});
      t.rw.writes.push_back(
          txn::WriteEntry{item, to_bytes("w"), std::nullopt, rec.rts, rec.wts});
    }
    return t;
  }

  /// Runs TF3Commit with an injected coordinator crash. The coordinator is
  /// server 0; the survivors are 1..n-1.
  struct RunResult {
    bool completed_normally{false};
    RecoveryOutcome recovery;
    TfCommitOutcome outcome;  // valid iff completed_normally
  };

  RunResult run_with_crash(CrashPoint crash) {
    TfCommitCoordinator coordinator(cohort_ids, keys);
    Block partial = TfCommitCoordinator::make_partial_block(
        0, crypto::Digest::zero(), {make_txn(1, {0, 1})}, cohort_ids);
    const GetVoteMsg get_vote = coordinator.start(std::move(partial), {});

    std::vector<VoteMsg> votes;
    for (auto& c : inner) votes.push_back(c->handle_get_vote(get_vote));

    RunResult result;
    if (crash == CrashPoint::kAfterVotes) {
      result.recovery = recover_survivors();
      return result;
    }

    // Pre-decision phase: fill decision + roots, broadcast, collect acks.
    const auto challenges = coordinator.on_votes(votes);
    const PreDecisionMsg pre{challenges[0].block};
    for (auto& c : cohorts) {
      EXPECT_TRUE(c->handle_pre_decision(pre).accepted);
    }
    if (crash == CrashPoint::kAfterPreDecision) {
      result.recovery = recover_survivors();
      return result;
    }

    std::vector<ResponseMsg> responses;
    for (auto& c : inner) responses.push_back(c->handle_challenge(challenges[0]));
    result.outcome = coordinator.on_responses(responses);
    result.completed_normally = true;
    for (auto& c : cohorts) c->finish_round();
    return result;
  }

  RecoveryOutcome recover_survivors() {
    // Server 0 (the coordinator) crashed; 1..n-1 recover.
    std::vector<Tf3CommitCohort*> survivors;
    std::vector<ServerId> ids;
    std::vector<crypto::PublicKey> survivor_keys;
    std::vector<const crypto::KeyPair*> survivor_keypairs;
    for (std::uint32_t i = 1; i < kServers; ++i) {
      survivors.push_back(cohorts[i].get());
      ids.push_back(ServerId{i});
      survivor_keys.push_back(keys[i]);
      survivor_keypairs.push_back(&keypairs[i]);
    }
    return recover_round(survivors, ids, survivor_keys, survivor_keypairs, 999);
  }

  std::vector<crypto::KeyPair> keypairs;
  std::vector<crypto::PublicKey> keys;
  std::vector<std::unique_ptr<store::Shard>> shards;
  std::vector<std::unique_ptr<TfCommitCohort>> inner;
  std::vector<std::unique_ptr<Tf3CommitCohort>> cohorts;
  std::vector<ServerId> cohort_ids;
};

TEST_F(Tf3CommitTest, FailureFreeRoundMatchesTfCommit) {
  const auto result = run_with_crash(CrashPoint::kNone);
  ASSERT_TRUE(result.completed_normally);
  EXPECT_EQ(result.outcome.decision, Decision::kCommit);
  EXPECT_TRUE(result.outcome.cosign_valid);
}

TEST_F(Tf3CommitTest, CrashBeforePreDecisionAbortsSafely) {
  // 3PC abort rule: nobody persisted a decision, so nobody may have acted
  // on one — the survivors abort the round.
  const auto result = run_with_crash(CrashPoint::kAfterVotes);
  EXPECT_FALSE(result.completed_normally);
  EXPECT_FALSE(result.recovery.recovered_decision);
}

TEST_F(Tf3CommitTest, CrashAfterPreDecisionRecoversCommit) {
  const auto result = run_with_crash(CrashPoint::kAfterPreDecision);
  EXPECT_FALSE(result.completed_normally);
  ASSERT_TRUE(result.recovery.recovered_decision);
  const TfCommitOutcome& outcome = result.recovery.outcome;
  EXPECT_EQ(outcome.decision, Decision::kCommit);
  EXPECT_TRUE(outcome.cosign_valid);
  // The recovered block is co-signed by the survivors only.
  EXPECT_EQ(outcome.block.signers,
            (std::vector<ServerId>{ServerId{1}, ServerId{2}, ServerId{3}}));
  // Its contents (transactions, roots, decision) are the persisted ones.
  EXPECT_EQ(outcome.block.txns.size(), 1u);
  EXPECT_NE(outcome.block.root_of(ServerId{0}), nullptr);
  EXPECT_NE(outcome.block.root_of(ServerId{1}), nullptr);
}

TEST_F(Tf3CommitTest, RecoveredBlockVerifiesUnderSurvivorKeys) {
  const auto result = run_with_crash(CrashPoint::kAfterPreDecision);
  ASSERT_TRUE(result.recovery.recovered_decision);
  const Block& block = result.recovery.outcome.block;
  std::vector<crypto::PublicKey> survivor_keys(keys.begin() + 1, keys.end());
  EXPECT_TRUE(
      crypto::cosi_verify(block.signing_bytes(), *block.cosign, survivor_keys));
  // ...and NOT under the full original membership (the crashed coordinator
  // could not contribute a share).
  EXPECT_FALSE(crypto::cosi_verify(block.signing_bytes(), *block.cosign, keys));
}

TEST_F(Tf3CommitTest, PartialPreDecisionStillRecovers) {
  // Only one survivor persisted the pre-decision before the crash — that is
  // enough: the decision was "made available" and must be completed.
  TfCommitCoordinator coordinator(cohort_ids, keys);
  Block partial = TfCommitCoordinator::make_partial_block(
      0, crypto::Digest::zero(), {make_txn(1, {0, 1})}, cohort_ids);
  const GetVoteMsg get_vote = coordinator.start(std::move(partial), {});
  std::vector<VoteMsg> votes;
  for (auto& c : inner) votes.push_back(c->handle_get_vote(get_vote));
  const auto challenges = coordinator.on_votes(votes);
  cohorts[2]->handle_pre_decision(PreDecisionMsg{challenges[0].block});

  const auto recovery = recover_survivors();
  ASSERT_TRUE(recovery.recovered_decision);
  EXPECT_EQ(recovery.outcome.decision, Decision::kCommit);
  EXPECT_TRUE(recovery.outcome.cosign_valid);
}

TEST_F(Tf3CommitTest, DivergentPreDecisionsAbortRecovery) {
  // A Byzantine-then-crashed coordinator equivocated in the pre-decision
  // phase: survivors hold different blocks, recovery refuses to pick one.
  TfCommitCoordinator coordinator(cohort_ids, keys);
  Block partial = TfCommitCoordinator::make_partial_block(
      0, crypto::Digest::zero(), {make_txn(1, {0, 1})}, cohort_ids);
  const GetVoteMsg get_vote = coordinator.start(std::move(partial), {});
  std::vector<VoteMsg> votes;
  for (auto& c : inner) votes.push_back(c->handle_get_vote(get_vote));
  const auto challenges = coordinator.on_votes(votes);

  Block commit_variant = challenges[0].block;
  Block abort_variant = commit_variant;
  abort_variant.decision = Decision::kAbort;
  abort_variant.roots.clear();
  cohorts[1]->handle_pre_decision(PreDecisionMsg{commit_variant});
  cohorts[2]->handle_pre_decision(PreDecisionMsg{abort_variant});

  const auto recovery = recover_survivors();
  EXPECT_FALSE(recovery.recovered_decision);
}

TEST(PreDecisionMsg, SerializationRoundTrip) {
  Block b;
  b.height = 3;
  b.decision = Decision::kCommit;
  b.signers = {ServerId{0}, ServerId{1}};
  const PreDecisionMsg msg{b};
  const auto back = PreDecisionMsg::deserialize(msg.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->block, b);
  EXPECT_FALSE(PreDecisionMsg::deserialize(to_bytes("junk")).has_value());
}

}  // namespace
}  // namespace fides::commit
