#include "engine/reactor.hpp"

#include <algorithm>
#include <chrono>

#include "common/cpu_time.hpp"
#include "crypto/cosi.hpp"

namespace fides::engine {

namespace {

using Clock = std::chrono::steady_clock;

double since_us(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

NodeId server_node(std::uint32_t i) { return NodeId::server(ServerId{i}); }

/// ServerIds [0, n) — the cohort list of the global protocol (§4.1: every
/// server, including the coordinator, participates in termination).
std::vector<ServerId> all_server_ids(std::uint32_t n) {
  std::vector<ServerId> ids;
  ids.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) ids.push_back(ServerId{i});
  return ids;
}

}  // namespace

RoundReactor::RoundReactor(Cluster& cluster, std::uint64_t epoch, RoundObserver* observer)
    : cluster_(&cluster),
      transport_(&cluster.transport()),
      n_(cluster.num_servers()),
      coord_id_(cluster.coordinator_id()),
      coord_node_(NodeId::server(cluster.coordinator_id())),
      epoch_(epoch),
      observer_(observer),
      cohort_us_(n_, 0),
      cohort_mht_us_(n_, 0) {}

Envelope RoundReactor::seal_framed(const Server& sender, const char* type,
                                   BytesView payload) const {
  return transport_->seal(sender.keypair(), NodeId::server(sender.id()), type,
                          frame_payload(epoch_, payload));
}

void RoundReactor::broadcast(Outbox& out, const Envelope& env) {
  for (std::uint32_t i = 0; i < n_; ++i) {
    if (i > 0) transport_->count_copy(env);
    out.send(env.sender, server_node(i), env);
  }
}

void RoundReactor::finalize() {
  metrics_.coordinator_us = coord_us_;
  metrics_.cohort_critical_us =
      *std::max_element(cohort_us_.begin(), cohort_us_.end());
  metrics_.mht_us = *std::max_element(cohort_mht_us_.begin(), cohort_mht_us_.end());
}

// --- TFCommit -----------------------------------------------------------------

TfCommitRound::TfCommitRound(Cluster& cluster, std::uint64_t epoch,
                             std::vector<commit::SignedEndTxn> batch,
                             RoundObserver* observer)
    : RoundReactor(cluster, epoch, observer),
      batch_(std::move(batch)),
      cohort_ids_(all_server_ids(cluster.num_servers())),
      coordinator_(cohort_ids_, cluster.server_keys()),
      votes_(n_),
      vote_in_(n_, 0),
      responses_(n_),
      resp_in_(n_, 0) {
  metrics_.txns_in_block = batch_.size();
  metrics_.network_legs = 6;  // end_txn + get_vote + vote + challenge + response + decision
}

void TfCommitRound::start(Outbox& out) {
  commit::order_batch(batch_);
  Server& coord = cluster_->server(coord_id_);

  // Phase 1 <GetVote, SchAnnouncement> — assembled against the
  // coordinator's current log head; everything after reacts to deliveries.
  const auto t0 = Clock::now();
  commit::Block partial = commit::TfCommitCoordinator::make_partial_block(
      coord.log().size(), coord.log().head_hash(), commit::batch_txns(batch_),
      cohort_ids_);
  commit::GetVoteMsg get_vote = coordinator_.start(std::move(partial), std::move(batch_));
  const Envelope env = seal_framed(coord, "tf_get_vote", get_vote.serialize());
  coord_us_ += since_us(t0);

  broadcast(out, env);
}

void TfCommitRound::on_deliver(NodeId src, NodeId dst, const Envelope& env,
                               bool authentic, Outbox& out) {
  const BytesView body = unframe_payload(env.payload);

  if (env.type == "tf_get_vote") {
    // Phase 2 <Vote, SchCommitment> at cohort dst.
    Server& server = cluster_->server(ServerId{dst.id});
    const double tc = common::thread_cpu_time_us();
    commit::VoteMsg vote;
    if (authentic) {
      if (const auto msg = commit::GetVoteMsg::deserialize(body)) {
        commit::CohortFaults faults = server.faults().cohort;
        if (!verify_touching_requests(*transport_, server, msg->requests)) {
          faults.always_vote_abort = true;  // refuse forged requests
        }
        vote = server.tf_cohort().handle_get_vote(*msg, faults);
        server.add_mht_time_us(server.tf_cohort().last_root_compute_us());
        cohort_mht_us_[dst.id] =
            std::max(cohort_mht_us_[dst.id], server.tf_cohort().last_root_compute_us());
      }
    }
    Envelope vote_env = seal_framed(server, "tf_vote", vote.serialize());
    cohort_us_[dst.id] += common::thread_cpu_time_us() - tc;
    out.send(NodeId::server(server.id()), coord_node_, std::move(vote_env));

  } else if (env.type == "tf_vote") {
    // Phase 3 <null, SchChallenge> at the coordinator, once the last vote is
    // in. Votes land in cohort order regardless of arrival order.
    const auto t = Clock::now();
    if (src.id < n_ && !vote_in_[src.id]) {
      // An unauthenticated or malformed vote is never ingested; the slot is
      // conservatively filled with an involved abort so the round still
      // terminates — with a deny.
      commit::VoteMsg vote;
      vote.cohort = ServerId{src.id};
      vote.involved = true;
      vote.abort_reason = "vote envelope failed authentication";
      if (authentic) {
        if (const auto msg = commit::VoteMsg::deserialize(body)) vote = *msg;
      }
      votes_[src.id] = std::move(vote);
      vote_in_[src.id] = 1;
      ++votes_seen_;
    }
    if (votes_seen_ == n_ && challenges_.empty()) {
      Server& coord = cluster_->server(coord_id_);
      challenges_ = coordinator_.on_votes(votes_, coord.faults().coordinator);
      // Honest coordinators broadcast one challenge; an equivocating one
      // signs a divergent envelope per cohort.
      std::vector<Envelope> challenge_envs;
      challenge_envs.reserve(challenges_.size());
      for (const auto& ch : challenges_) {
        challenge_envs.push_back(seal_framed(coord, "tf_challenge", ch.serialize()));
      }
      for (std::uint32_t i = 0; i < n_; ++i) {
        const std::size_t slot = challenges_.size() == 1 ? 0 : i;
        if (challenges_.size() == 1 && i > 0) transport_->count_copy(challenge_envs[0]);
        out.send(coord_node_, server_node(i), challenge_envs[slot]);
      }
    }
    coord_us_ += since_us(t);

  } else if (env.type == "tf_challenge") {
    // Phase 4 <null, SchResponse> at cohort dst.
    Server& server = cluster_->server(ServerId{dst.id});
    const double tc = common::thread_cpu_time_us();
    commit::ResponseMsg resp;
    resp.cohort = server.id();
    if (authentic) {
      if (const auto msg = commit::ChallengeMsg::deserialize(body)) {
        resp = server.tf_cohort().handle_challenge(*msg, server.faults().cohort);
      } else {
        resp.refused = true;
        resp.refusal_reason = "malformed challenge payload";
      }
    } else {
      resp.refused = true;
      resp.refusal_reason = "challenge envelope failed authentication";
    }
    Envelope resp_env = seal_framed(server, "tf_response", resp.serialize());
    cohort_us_[dst.id] += common::thread_cpu_time_us() - tc;
    out.send(NodeId::server(server.id()), coord_node_, std::move(resp_env));

  } else if (env.type == "tf_response") {
    // Phase 5 <Decision, null> at the coordinator, once all responses are
    // in: aggregate the co-sign and broadcast the finalized block.
    const auto t = Clock::now();
    if (src.id < n_ && !resp_in_[src.id]) {
      commit::ResponseMsg resp;
      resp.cohort = ServerId{src.id};
      resp.refused = true;
      resp.refusal_reason = "response envelope failed authentication";
      if (authentic) {
        if (const auto msg = commit::ResponseMsg::deserialize(body)) resp = *msg;
      }
      responses_[src.id] = std::move(resp);
      resp_in_[src.id] = 1;
      ++resps_seen_;
    }
    if (resps_seen_ == n_ && !outcome_.has_value()) {
      outcome_ = coordinator_.on_responses(responses_);
      const commit::DecisionMsg decision{outcome_->block};
      const Envelope decision_env =
          seal_framed(cluster_->server(coord_id_), "tf_decision", decision.serialize());
      broadcast(out, decision_env);
    }
    coord_us_ += since_us(t);

  } else if (env.type == "tf_decision") {
    // Log append + datastore update at server dst (steps 6-7). The apply
    // step rebuilds Merkle leaves — folded into mht_us.
    Server& server = cluster_->server(ServerId{dst.id});
    const double tc = common::thread_cpu_time_us();
    const double mht_before = server.mht_time_us();
    if (authentic) {
      if (const auto msg = commit::DecisionMsg::deserialize(body)) {
        server.handle_decision(*msg, cluster_->server_keys());
      }
    }
    cohort_mht_us_[dst.id] =
        std::max(cohort_mht_us_[dst.id], server.mht_time_us() - mht_before);
    cohort_us_[dst.id] += common::thread_cpu_time_us() - tc;
    if (observer_ != nullptr) observer_->on_decision_processed(epoch_, dst.id);
  }
}

void TfCommitRound::finalize() {
  RoundReactor::finalize();
  if (outcome_.has_value()) {
    metrics_.decision = outcome_->decision;
    metrics_.cosign_valid = outcome_->cosign_valid;
    metrics_.faulty_cosigners = outcome_->faulty_cosigners;
    metrics_.refusals = outcome_->refusals;
  }
}

// --- 2PC ----------------------------------------------------------------------

TwoPhaseRound::TwoPhaseRound(Cluster& cluster, std::uint64_t epoch,
                             std::vector<commit::SignedEndTxn> batch,
                             RoundObserver* observer)
    : RoundReactor(cluster, epoch, observer),
      batch_(std::move(batch)),
      cohort_ids_(all_server_ids(cluster.num_servers())),
      coordinator_(cohort_ids_),
      votes_(n_),
      vote_in_(n_, 0) {
  metrics_.txns_in_block = batch_.size();
  metrics_.network_legs = 4;  // end_txn + prepare + vote + decision
}

void TwoPhaseRound::start(Outbox& out) {
  commit::order_batch(batch_);
  Server& coord = cluster_->server(coord_id_);

  const auto t0 = Clock::now();
  commit::Block partial = commit::TfCommitCoordinator::make_partial_block(
      coord.log().size(), coord.log().head_hash(), commit::batch_txns(batch_),
      cohort_ids_);
  commit::PrepareMsg prepare = coordinator_.start(std::move(partial), std::move(batch_));
  const Envelope env = seal_framed(coord, "2pc_prepare", prepare.serialize());
  coord_us_ += since_us(t0);

  broadcast(out, env);
}

void TwoPhaseRound::on_deliver(NodeId src, NodeId dst, const Envelope& env,
                               bool authentic, Outbox& out) {
  const BytesView body = unframe_payload(env.payload);

  if (env.type == "2pc_prepare") {
    Server& server = cluster_->server(ServerId{dst.id});
    const double tc = common::thread_cpu_time_us();
    commit::PrepareVoteMsg vote;
    if (authentic) {
      if (const auto msg = commit::PrepareMsg::deserialize(body)) {
        const bool requests_ok =
            verify_touching_requests(*transport_, server, msg->requests);
        vote = server.tpc_cohort().handle_prepare(*msg);
        if (!requests_ok) {
          vote.vote = txn::Vote::kAbort;
          vote.abort_reason = "client request signature invalid";
        }
      }
    }
    Envelope vote_env = seal_framed(server, "2pc_vote", vote.serialize());
    cohort_us_[dst.id] += common::thread_cpu_time_us() - tc;
    out.send(NodeId::server(server.id()), coord_node_, std::move(vote_env));

  } else if (env.type == "2pc_vote") {
    const auto t = Clock::now();
    if (src.id < n_ && !vote_in_[src.id]) {
      commit::PrepareVoteMsg vote;
      vote.cohort = ServerId{src.id};
      vote.involved = true;
      vote.abort_reason = "vote envelope failed authentication";
      if (authentic) {
        if (const auto msg = commit::PrepareVoteMsg::deserialize(body)) vote = *msg;
      }
      votes_[src.id] = std::move(vote);
      vote_in_[src.id] = 1;
      ++votes_seen_;
    }
    if (votes_seen_ == n_ && !outcome_.has_value()) {
      outcome_ = coordinator_.on_votes(votes_);
      const commit::CommitDecisionMsg decision{outcome_->block};
      const Envelope decision_env =
          seal_framed(cluster_->server(coord_id_), "2pc_decision", decision.serialize());
      broadcast(out, decision_env);
    }
    coord_us_ += since_us(t);

  } else if (env.type == "2pc_decision") {
    Server& server = cluster_->server(ServerId{dst.id});
    const double tc = common::thread_cpu_time_us();
    if (authentic) {
      if (const auto msg = commit::CommitDecisionMsg::deserialize(body)) {
        server.handle_decision_2pc(*msg);
      }
    }
    cohort_us_[dst.id] += common::thread_cpu_time_us() - tc;
    if (observer_ != nullptr) observer_->on_decision_processed(epoch_, dst.id);
  }
}

void TwoPhaseRound::finalize() {
  RoundReactor::finalize();
  if (outcome_.has_value()) metrics_.decision = outcome_->decision;
}

// --- Checkpoint ---------------------------------------------------------------

CheckpointRound::CheckpointRound(Cluster& cluster, std::uint64_t epoch)
    : RoundReactor(cluster, epoch, nullptr),
      secrets_(n_),
      commitments_(n_),
      agrees_(n_, 0),
      commit_in_(n_, 0),
      responses_(n_),
      resp_in_(n_, 0) {
  metrics_.network_legs = 4;  // propose + commit + challenge + response
}

void CheckpointRound::start(Outbox& out) {
  Server& coord = cluster_->server(coord_id_);
  const auto t0 = Clock::now();
  cp_ = ledger::make_checkpoint(coord.log().blocks(), all_server_ids(n_));
  record_ = cp_.signing_bytes();
  const Envelope env = seal_framed(coord, "cp_propose", cp_.serialize());
  coord_us_ += since_us(t0);

  broadcast(out, env);
}

void CheckpointRound::on_deliver(NodeId src, NodeId dst, const Envelope& env,
                                 bool authentic, Outbox& out) {
  const BytesView body = unframe_payload(env.payload);

  if (env.type == "cp_propose") {
    // A server contributes its CoSi commitment only after verifying that the
    // proposal matches its own log (same height, same head hash).
    Server& server = cluster_->server(ServerId{dst.id});
    const double tc = common::thread_cpu_time_us();
    Writer w;
    w.u32(dst.id);
    bool agree = false;
    if (authentic) {
      if (const auto prop = ledger::Checkpoint::deserialize(body)) {
        agree = server.log().size() == prop->height &&
                server.log().head_hash() == prop->head_hash;
        if (agree) {
          secrets_[dst.id] =
              crypto::cosi_commit(server.keypair(), prop->signing_bytes(),
                                  ledger::checkpoint_cosi_round(prop->height));
        }
      }
    }
    w.boolean(agree);
    if (agree) w.bytes(secrets_[dst.id].v.serialize());
    Envelope commit_env = seal_framed(server, "cp_commit", std::move(w).take());
    cohort_us_[dst.id] += common::thread_cpu_time_us() - tc;
    out.send(NodeId::server(server.id()), coord_node_, std::move(commit_env));

  } else if (env.type == "cp_commit") {
    // The authenticated sender — not the payload — names the slot; an
    // unauthenticated or mislabelled commit counts as a refusal.
    const auto t = Clock::now();
    if (src.id < n_ && !commit_in_[src.id]) {
      commit_in_[src.id] = 1;
      ++commits_seen_;
      if (authentic) {
        Reader r(body);
        const std::uint32_t i = r.u32();
        const bool agree = r.boolean();
        if (i == src.id && agree) {
          if (const auto pt = crypto::AffinePoint::deserialize(r.bytes())) {
            agrees_[src.id] = 1;
            commitments_[src.id] = *pt;
          }
        }
      }
    }
    if (commits_seen_ == n_) {
      for (std::uint32_t j = 0; j < n_; ++j) {
        if (!agrees_[j]) refused_ = true;
      }
      if (!refused_) {
        const crypto::AffinePoint v = crypto::cosi_aggregate_commitments(commitments_);
        challenge_ = crypto::cosi_challenge(v, record_);
        cp_.cosign = crypto::CosiSignature{v, crypto::U256{}};  // r filled later
        Writer w;
        const auto cb = challenge_.to_bytes_be();
        w.raw(BytesView(cb.data(), cb.size()));
        const Envelope challenge_env =
            seal_framed(cluster_->server(coord_id_), "cp_challenge", std::move(w).take());
        broadcast(out, challenge_env);
      }
    }
    coord_us_ += since_us(t);

  } else if (env.type == "cp_challenge") {
    Server& server = cluster_->server(ServerId{dst.id});
    const double tc = common::thread_cpu_time_us();
    if (!authentic) return;
    Reader r(body);
    const crypto::U256 c = crypto::U256::from_bytes_be(r.raw(32));
    Writer w;
    w.u32(dst.id);
    const auto rb =
        crypto::cosi_respond(server.keypair(), secrets_[dst.id].secret, c).to_bytes_be();
    w.raw(BytesView(rb.data(), rb.size()));
    Envelope resp_env = seal_framed(server, "cp_response", std::move(w).take());
    cohort_us_[dst.id] += common::thread_cpu_time_us() - tc;
    out.send(NodeId::server(server.id()), coord_node_, std::move(resp_env));

  } else if (env.type == "cp_response") {
    const auto t = Clock::now();
    if (src.id < n_ && !resp_in_[src.id]) {
      resp_in_[src.id] = 1;
      ++resps_seen_;
      if (authentic) {
        Reader r(body);
        const std::uint32_t i = r.u32();
        const crypto::U256 ri = crypto::U256::from_bytes_be(r.raw(32));
        // Unauthenticated => the share stays zero and the aggregate co-sign
        // fails validation, sinking the checkpoint.
        if (i == src.id) responses_[src.id] = ri;
      }
    }
    if (resps_seen_ == n_ && !finalized_) {
      finalized_ = true;
      cp_.cosign->r = crypto::cosi_aggregate_responses(responses_);
    }
    coord_us_ += since_us(t);
  }
}

void CheckpointRound::finalize() { RoundReactor::finalize(); }

std::optional<ledger::Checkpoint> CheckpointRound::result() const {
  if (refused_ || !finalized_ || !cp_.cosign.has_value()) return std::nullopt;
  if (!ledger::validate_checkpoint(cp_, cluster_->server_keys())) return std::nullopt;
  return cp_;
}

}  // namespace fides::engine
