#include "ordserv/sequencer.hpp"

#include "common/serde.hpp"

namespace fides::ordserv {

std::uint64_t Sequencer::submit(ledger::Block block, ServerGroup group) {
  common::MutexLock lock(mutex_);
  SequencedBlock entry;
  entry.group = std::move(group);

  // Dependencies: earlier stream entries touching any common item. FIFO
  // sequencing preserves their order by construction; the metadata lets
  // consumers and tests verify the §4.6 contract explicitly.
  for (const auto& t : block.txns) {
    for (const ItemId item : t.rw.touched_items()) {
      const auto it = last_touch_.find(item);
      if (it != last_touch_.end()) entry.depends_on.push_back(it->second);
    }
  }
  std::sort(entry.depends_on.begin(), entry.depends_on.end());
  entry.depends_on.erase(
      std::unique(entry.depends_on.begin(), entry.depends_on.end()),
      entry.depends_on.end());

  const std::uint64_t height = stream_.size();
  // OrdServ owns the chaining: global height + hash pointer over the
  // previous *sequenced* entry. The group's co-sign already seals the block
  // contents; the outer chain seals the order.
  block.height = height;
  block.prev_hash = head_hash_;
  head_hash_ = block.digest();

  for (const auto& t : block.txns) {
    for (const ItemId item : t.rw.touched_items()) last_touch_[item] = height;
  }

  entry.block = std::move(block);
  stream_.push_back(std::move(entry));
  return height;
}

const SequencedBlock& Sequencer::at(std::uint64_t height) const {
  common::MutexLock lock(mutex_);
  // Element addresses in a deque are stable across push_back and entries are
  // immutable once sequenced, so the reference outlives the lock safely.
  return stream_.at(height);
}

std::vector<const SequencedBlock*> Sequencer::fetch_new(ServerId server) {
  common::MutexLock lock(mutex_);
  std::size_t& cur = cursor_[server.value];
  std::vector<const SequencedBlock*> out;
  // deque never invalidates element addresses on push_back, so handing out
  // pointers is safe even while other threads keep submitting.
  while (cur < stream_.size()) out.push_back(&stream_[cur++]);
  return out;
}

std::size_t Sequencer::size() const {
  common::MutexLock lock(mutex_);
  return stream_.size();
}

}  // namespace fides::ordserv
