// Client-side read/write-set accumulation.
//
// During execution (§4.2.1) the client collects, per data item, the values
// and timestamps returned by servers; at End Transaction it ships the
// finished RwSet to the coordinator. The builder also patches blind writes:
// when a Write acknowledgement reports the old value of an item the client
// never read, that old value lands in the write entry (Table 1: "old_val is
// populated only for blind writes").
#pragma once

#include "txn/transaction.hpp"

namespace fides::txn {

class RwSetBuilder {
 public:
  /// Records a read response from a server.
  void record_read(ItemId id, Bytes value, const Timestamp& rts, const Timestamp& wts);

  /// Records a write issued by the client. `observed` is the item state
  /// returned in the server's acknowledgement; it supplies the timestamps
  /// and — iff the item was not previously read (blind write) — old_value.
  void record_write(ItemId id, Bytes new_value, Bytes observed_old_value,
                    const Timestamp& rts, const Timestamp& wts);

  bool has_read(ItemId id) const;

  RwSet build() &&;

 private:
  RwSet set_;
};

}  // namespace fides::txn
