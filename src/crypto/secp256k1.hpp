// secp256k1 elliptic-curve group, implemented from scratch.
//
// Curve: y^2 = x^3 + 7 over F_p, p = 2^256 - 2^32 - 977, with prime group
// order n. Points use Jacobian projective coordinates in Montgomery form;
// affine conversion happens only at (de)serialization boundaries.
//
// This is the prime-order group underlying Schnorr signatures (§2.1) and
// Collective Signing (§2.2). The implementation favours clarity and
// correctness over constant-time hardening: Fides' threat model (§3.2) is a
// computationally bounded adversary who cannot forge signatures; side-channel
// resistance of co-located processes is out of the paper's scope.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "crypto/field.hpp"
#include "crypto/sha256.hpp"

namespace fides::crypto {

class Curve;  // fwd

/// A point on secp256k1 in Jacobian coordinates (X : Y : Z), meaning the
/// affine point (X/Z^2, Y/Z^3); Z == 0 encodes the point at infinity.
struct Point {
  Fe x, y, z;

  bool is_infinity() const { return z.v.is_zero(); }
};

/// An affine point; the canonical serialized form is x||y big-endian
/// (64 bytes), or a single zero byte for infinity.
struct AffinePoint {
  U256 x, y;
  bool infinity{false};

  friend bool operator==(const AffinePoint&, const AffinePoint&) = default;

  Bytes serialize() const;
  static std::optional<AffinePoint> deserialize(BytesView b);
};

/// Singleton-style curve context holding the two Montgomery fields (mod p
/// and mod n) plus the generator. Construction is cheap but not free; use
/// Curve::instance() to share one.
class Curve {
 public:
  static const Curve& instance();

  const MontgomeryField& fp() const { return fp_; }
  const MontgomeryField& fn() const { return fn_; }
  const U256& order() const { return fn_.modulus(); }
  const Point& generator() const { return g_; }

  Point infinity() const;

  Point dbl(const Point& p) const;
  Point add(const Point& p, const Point& q) const;
  Point negate(const Point& p) const;

  /// Mixed addition p + q for a q already normalized to Z == 1 (madd-2007-bl,
  /// ~7M+4S vs ~11M+5S for the general add). Precondition: q.z is the
  /// Montgomery one, or q is infinity.
  Point add_mixed(const Point& p, const Point& q) const;

  /// Normalizes every non-infinity point in `pts` to Z == 1 in place, using
  /// the Montgomery trick: one field inversion for the whole span instead of
  /// one per point. Infinities are left untouched (Z == 0).
  void batch_normalize(std::span<Point> pts) const;

  /// Affine conversion of a whole span with a single field inversion.
  std::vector<AffinePoint> batch_to_affine(std::span<const Point> pts) const;

  /// Scalar multiplication k*P, plain double-and-add MSB-first.
  Point mul(const U256& k, const Point& p) const;

  /// Strauss–Shamir joint form a*G + b*P in one interleaved ladder: the G
  /// side reuses the fixed-base window table (adds only), the P side walks a
  /// width-5 wNAF over a batch-normalized odd-multiples table. One ladder's
  /// worth of doublings serves both scalars — the Schnorr verification shape.
  /// `b` must be reduced mod n (throws std::invalid_argument otherwise).
  Point mul_add(const U256& a, const U256& b, const Point& p) const;

  /// Multi-scalar multiplication g_scalar*G + Σ scalars[i]*points[i] under a
  /// single shared double ladder (Strauss). All per-point odd-multiple tables
  /// are batch-normalized with one inversion, so every ladder add is a mixed
  /// add. `scalars` and `points` must have equal length, and every entry of
  /// `scalars` must be reduced mod n (the wNAF recoding is only correct for
  /// k < 2^256 - 15); violations throw std::invalid_argument.
  Point msm(const U256& g_scalar, std::span<const U256> scalars,
            std::span<const Point> points) const;

  /// k*G via a precomputed fixed-base window table (4-bit windows over the
  /// 256-bit scalar: ~64 additions, no doublings). Signing, CoSi
  /// commitments, and responses are all fixed-base, so this is the hot path.
  Point mul_g(const U256& k) const;

  AffinePoint to_affine(const Point& p) const;
  Point from_affine(const AffinePoint& a) const;

  /// Checks y^2 == x^3 + 7 (mod p) for a non-infinity affine point.
  bool on_curve(const AffinePoint& a) const;

  /// True iff the two points denote the same group element.
  bool equal(const Point& p, const Point& q) const;

 private:
  Curve();

  MontgomeryField fp_;
  MontgomeryField fn_;
  Fe b7_;  // curve constant 7 in Montgomery form
  Point g_;
  /// g_table_[i][j-1] == j * 16^i * G for j in 1..15, i in 0..63. Every entry
  /// is batch-normalized to Z == 1 at construction so table lookups feed the
  /// cheaper mixed addition.
  std::vector<std::array<Point, 15>> g_table_;
};

/// Reduces a 32-byte digest to a scalar in [0, n). Used for Schnorr/CoSi
/// challenges: c = H(...) interpreted big-endian mod n.
U256 scalar_from_digest(const Digest& d);

}  // namespace fides::crypto
