#include "crypto/schnorr.hpp"

#include "common/serde.hpp"

namespace fides::crypto {

namespace {

/// Challenge scalar c = H(ser(R) ‖ ser(P) ‖ m) mod n.
U256 challenge(const AffinePoint& r, const PublicKey& pk, BytesView message) {
  Sha256 h;
  const Bytes rb = r.serialize();
  const Bytes pb = pk.serialize();
  h.update(rb);
  h.update(pb);
  h.update(message);
  return scalar_from_digest(h.finalize());
}

/// Deterministic nonce: k = H(sk ‖ m ‖ ctr) mod n, retried while zero.
U256 derive_nonce(const U256& sk, BytesView message) {
  const auto skb = sk.to_bytes_be();
  for (std::uint8_t ctr = 0;; ++ctr) {
    Sha256 h;
    h.update(BytesView(skb.data(), skb.size()));
    h.update(message);
    h.update(BytesView(&ctr, 1));
    const U256 k = scalar_from_digest(h.finalize());
    if (!k.is_zero()) return k;
  }
}

}  // namespace

Bytes Signature::serialize() const {
  Writer w;
  w.bytes(r.serialize());
  const auto sb = s.to_bytes_be();
  w.raw(BytesView(sb.data(), sb.size()));
  return std::move(w).take();
}

std::optional<Signature> Signature::deserialize(BytesView b) {
  try {
    Reader rd(b);
    const Bytes rb = rd.bytes();
    const Bytes sb = rd.raw(32);
    rd.expect_done();
    const auto point = AffinePoint::deserialize(rb);
    if (!point) return std::nullopt;
    // Canonical form only: R = k·G with k != 0 is never infinity, and s is a
    // reduced scalar. Anything else would fail verify() later anyway; reject
    // it once here so downstream code can trust a parsed Signature.
    if (point->infinity) return std::nullopt;
    Signature sig;
    sig.r = *point;
    sig.s = U256::from_bytes_be(sb);
    if (!u256_less(sig.s, Curve::instance().order())) return std::nullopt;
    return sig;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

KeyPair KeyPair::from_seed(BytesView seed32) {
  const Digest d = sha256(seed32);
  U256 sk = scalar_from_digest(d);
  if (sk.is_zero()) sk = U256(1);  // astronomically unlikely; keep total
  const Curve& curve = Curve::instance();
  PublicKey pk{curve.to_affine(curve.mul_g(sk))};
  return KeyPair(sk, pk);
}

KeyPair KeyPair::deterministic(std::uint64_t node_id) {
  Writer w;
  w.str("fides-node-key");
  w.u64(node_id);
  return from_seed(w.data());
}

Signature KeyPair::sign(BytesView message) const {
  const Curve& curve = Curve::instance();
  const U256 k = derive_nonce(sk_, message);
  const AffinePoint r = curve.to_affine(curve.mul_g(k));
  const U256 c = challenge(r, pk_, message);

  // s = k + c*sk mod n, via the order-field Montgomery context.
  const auto& fn = curve.fn();
  const Fe s = fn.add(fn.to_mont(k), fn.mul(fn.to_mont(c), fn.to_mont(sk_)));
  return Signature{r, fn.from_mont(s)};
}

bool verify(const PublicKey& pk, BytesView message, const Signature& sig) {
  const Curve& curve = Curve::instance();
  if (pk.point.infinity || sig.r.infinity) return false;
  if (!curve.on_curve(pk.point) || !curve.on_curve(sig.r)) return false;
  if (!u256_less(sig.s, curve.order())) return false;

  // s·G == R + c·P rearranged to s·G + (n-c)·P == R: one Strauss-joint
  // ladder instead of a fixed-base mul plus a plain double-and-add.
  const U256 c = challenge(sig.r, pk, message);
  const auto& fn = curve.fn();
  const U256 neg_c = fn.from_mont(fn.neg(fn.to_mont(c)));
  const Point lhs = curve.mul_add(sig.s, neg_c, curve.from_affine(pk.point));
  return curve.equal(lhs, curve.from_affine(sig.r));
}

namespace {

/// Checks the z-weighted aggregate equation over `idx` ⊆ the batch:
///   Σ zᵢ·Rᵢ + Σ (zᵢcᵢ)·Pᵢ - (Σ zᵢsᵢ)·G == 0.
bool aggregate_holds(std::span<const BatchItem> items, std::span<const U256> z,
                     std::span<const U256> c, std::span<const Point> r_points,
                     std::span<const Point> p_points, std::span<const std::size_t> idx) {
  const Curve& curve = Curve::instance();
  const auto& fn = curve.fn();
  Fe s_agg = fn.zero();
  std::vector<U256> scalars;
  std::vector<Point> points;
  scalars.reserve(idx.size() * 2);
  points.reserve(idx.size() * 2);
  for (const std::size_t i : idx) {
    const Fe zi = fn.to_mont(z[i]);
    s_agg = fn.add(s_agg, fn.mul(zi, fn.to_mont(items[i].sig->s)));
    scalars.push_back(z[i]);
    points.push_back(r_points[i]);
    scalars.push_back(fn.from_mont(fn.mul(zi, fn.to_mont(c[i]))));
    points.push_back(p_points[i]);
  }
  const U256 neg_s = fn.from_mont(fn.neg(s_agg));
  return curve.msm(neg_s, scalars, points).is_infinity();
}

/// Recursive split: a subset whose aggregate holds is accepted wholesale;
/// one that fails is halved, bottoming out at a real individual verify — so
/// attribution is exact even for adversarial batches.
void attribute(std::span<const BatchItem> items, std::span<const U256> z,
               std::span<const U256> c, std::span<const Point> r_points,
               std::span<const Point> p_points, std::span<const std::size_t> idx,
               std::vector<unsigned char>& ok) {
  if (idx.empty()) return;
  if (idx.size() == 1) {
    const std::size_t i = idx[0];
    ok[i] = verify(*items[i].pk, items[i].message, *items[i].sig) ? 1 : 0;
    return;
  }
  if (aggregate_holds(items, z, c, r_points, p_points, idx)) {
    for (const std::size_t i : idx) ok[i] = 1;
    return;
  }
  const std::size_t half = idx.size() / 2;
  attribute(items, z, c, r_points, p_points, idx.subspan(0, half), ok);
  attribute(items, z, c, r_points, p_points, idx.subspan(half), ok);
}

}  // namespace

std::vector<unsigned char> batch_verify(std::span<const BatchItem> items) {
  const Curve& curve = Curve::instance();
  std::vector<unsigned char> ok(items.size(), 0);
  if (items.empty()) return ok;

  // Structural screen first: malformed items are rejected individually and
  // never enter the aggregate (an off-curve point would poison the MSM).
  std::vector<std::size_t> live;
  live.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& it = items[i];
    if (it.pk->point.infinity || it.sig->r.infinity) continue;
    if (!curve.on_curve(it.pk->point) || !curve.on_curve(it.sig->r)) continue;
    if (!u256_less(it.sig->s, curve.order())) continue;
    live.push_back(i);
  }
  if (live.empty()) return ok;
  if (live.size() == 1) {
    const auto& it = items[live[0]];
    ok[live[0]] = verify(*it.pk, it.message, *it.sig) ? 1 : 0;
    return ok;
  }

  std::vector<U256> c(items.size());
  std::vector<Point> r_points(items.size(), curve.infinity());
  std::vector<Point> p_points(items.size(), curve.infinity());
  for (const std::size_t i : live) {
    c[i] = challenge(items[i].sig->r, *items[i].pk, items[i].message);
    r_points[i] = curve.from_affine(items[i].sig->r);
    p_points[i] = curve.from_affine(items[i].pk->point);
  }

  // Fiat–Shamir coefficient seed over the whole batch: the zᵢ are fixed by
  // the batch contents (deterministic replay) yet unpredictable to whoever
  // produced the signatures, which is what defeats crafted cancellations.
  // The seed must commit to the COMPLETE signature, s included: with s left
  // out, an adversary who knows its keys' discrete logs could compute every
  // zᵢ up front and then solve Σ zᵢsᵢ = Σ zᵢ(rᵢ + cᵢxᵢ) for s values that
  // pass the aggregate while failing individual verification. Hashing s
  // makes any such solve change the coefficients out from under itself.
  Sha256 seed_h;
  seed_h.update(to_bytes("fides-batch-verify-v2"));
  for (const std::size_t i : live) {
    seed_h.update(items[i].sig->serialize());  // R and s
    seed_h.update(items[i].pk->serialize());
    seed_h.update(sha256(items[i].message).view());
  }
  const Digest seed = seed_h.finalize();
  std::vector<U256> z(items.size());
  for (const std::size_t i : live) {
    Sha256 h;
    h.update(seed.view());
    Writer w;
    w.u64(static_cast<std::uint64_t>(i));
    h.update(w.data());
    const Digest d = h.finalize();
    // 128-bit coefficients keep the MSM scalars short; zero is remapped so
    // no item can drop out of the linear combination.
    U256 zi = U256::from_bytes_be(d.view());
    zi.w[2] = 0;
    zi.w[3] = 0;
    if (zi.is_zero()) zi = U256(1);
    z[i] = zi;
  }

  attribute(items, z, c, r_points, p_points, live, ok);
  return ok;
}

}  // namespace fides::crypto
