#include "commit/two_phase_commit.hpp"

#include "commit/batch.hpp"

namespace fides::commit {

PrepareVoteMsg TwoPhaseCommitCohort::handle_prepare(const PrepareMsg& msg) {
  PrepareVoteMsg vote;
  vote.cohort = id_;

  bool involved = false;
  for (const auto& t : msg.partial_block.txns) {
    for (const ItemId item : t.rw.touched_items()) {
      if (shard_->contains(item)) {
        involved = true;
        break;
      }
    }
    if (involved) break;
  }
  vote.involved = involved;
  if (!involved) {
    last_vote_ = txn::Vote::kCommit;
    return vote;
  }

  txn::ValidationResult result{txn::Vote::kCommit, {}};
  if (!batch_non_conflicting(msg.partial_block.txns)) {
    result = {txn::Vote::kAbort, "block packs conflicting transactions"};
  }
  for (const auto& t : msg.partial_block.txns) {
    if (!result.ok()) break;
    result = txn::validate_occ(*shard_, t);
  }
  last_vote_ = result.vote;
  vote.vote = result.vote;
  vote.abort_reason = result.reason;
  return vote;
}

PrepareMsg TwoPhaseCommitCoordinator::start(Block partial_block,
                                            std::vector<SignedEndTxn> requests) {
  block_ = std::move(partial_block);
  PrepareMsg msg;
  msg.partial_block = block_;
  msg.requests = std::move(requests);
  return msg;
}

TwoPhaseCommitOutcome TwoPhaseCommitCoordinator::on_votes(
    std::span<const PrepareVoteMsg> votes) {
  bool all_commit = true;
  for (const auto& v : votes) {
    if (v.involved && v.vote == txn::Vote::kAbort) all_commit = false;
  }
  block_.decision = all_commit ? Decision::kCommit : Decision::kAbort;

  TwoPhaseCommitOutcome out;
  out.decision = block_.decision;
  out.block = block_;
  return out;
}

}  // namespace fides::commit
