// A Fides database server (§3.1, Figure 3).
//
// Four components: an execution layer (transactional reads/writes against
// the client), a commitment layer (TFCommit cohort / 2PC cohort), the
// datastore (one shard), and the tamper-proof log. The server also keeps the
// signed client-message log that §3.2 prescribes as a defence against
// falsified client accusations.
//
// A server configured with a FaultConfig deviates exactly where the config
// says; everything else stays honest, so each test isolates one failure.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "commit/two_phase_commit.hpp"
#include "fides/fault_config.hpp"
#include "fides/transport.hpp"
#include "ledger/log.hpp"
#include "ledger/round_log.hpp"
#include "store/write_buffer.hpp"

namespace fides {

/// Acknowledgement of a buffered write (§4.2.1): the old value and
/// timestamps of the item, enabling blind-write bookkeeping at the client.
struct WriteAck {
  ItemId id{};
  Bytes old_value;
  Timestamp rts;
  Timestamp wts;
};

/// What the server returns to an audit request for one item at one version:
/// its claimed value and a Merkle Verification Object for it.
struct AuditItemProof {
  ItemId id{};
  Bytes value;
  merkle::VerificationObject vo;
};

class Server {
 public:
  /// `pool`, when given, parallelizes this server's Merkle tree builds
  /// (initial provisioning, audit rebuilds). Not owned; must outlive the
  /// server. Null keeps everything on the calling thread.
  ///
  /// `durable`, when given, is the server's crash-surviving round log — it
  /// outlives this object (the Cluster owns it), so a replacement Server
  /// can restore() from it after a crash. Null gives the server a private
  /// in-memory log (durability scoped to the object's lifetime — enough for
  /// the unit tests that construct Servers directly).
  Server(ServerId id, const ClusterConfig& config, common::ThreadPool* pool = nullptr,
         ledger::RoundLog* durable = nullptr);

  ServerId id() const { return id_; }
  const crypto::KeyPair& keypair() const { return keypair_; }
  const crypto::PublicKey& public_key() const { return keypair_.public_key(); }

  store::Shard& shard() { return shard_; }
  const store::Shard& shard() const { return shard_; }
  ledger::TamperProofLog& log() { return log_; }
  const ledger::TamperProofLog& log() const { return log_; }

  FaultConfig& faults() { return faults_; }
  const FaultConfig& faults() const { return faults_; }

  // --- Execution layer -------------------------------------------------------

  void handle_begin(ClientId client, TxnId txn);

  /// Read path; a faulty execution layer corrupts the returned value here
  /// while leaving timestamps intact (Scenario 1).
  store::ReadResult handle_read(ClientId client, TxnId txn, ItemId item);

  /// Buffers the write and acknowledges with the old item state.
  WriteAck handle_write(ClientId client, TxnId txn, ItemId item, Bytes value);

  // --- Commitment layer ------------------------------------------------------

  commit::TfCommitCohort& tf_cohort() { return tf_cohort_; }
  commit::TwoPhaseCommitCohort& tpc_cohort() { return tpc_cohort_; }

  /// What a delivered decision did to this server's state. The engine fires
  /// the pipeline watermark only for kApplied/kRejected (the server
  /// *processed* this round's decision); kStale and kFuture are recovery-era
  /// stragglers that change nothing.
  enum class ApplyResult {
    kApplied,   ///< appended (and applied when committed)
    kRejected,  ///< bad co-sign: processed and refused — never appended
    kStale,     ///< block already in the log (redelivery after restore)
    kFuture,    ///< ahead of this log's head (in-flight copy outran the
                ///< recovery replay stream; the replay re-supplies order)
  };

  /// Phase-5 handling: verify the co-sign, append the block to the log, and
  /// on commit apply the writes to the datastore (steps 6-7 of §4.1). The
  /// datastore-layer faults strike inside this application step.
  ApplyResult apply_decision(const commit::DecisionMsg& msg,
                             std::span<const crypto::PublicKey> all_server_keys);

  /// apply_decision() == kApplied, for call sites that only distinguish
  /// "accepted" from "refused".
  bool handle_decision(const commit::DecisionMsg& msg,
                       std::span<const crypto::PublicKey> all_server_keys);

  /// Group-commit delivery (§4.6): apply a block sequenced by OrdServ. Same
  /// contract as apply_decision, except the co-sign is verified over the
  /// *unchained* block bytes (the group signed height 0 / zero prev-hash;
  /// OrdServ filled the chain position afterwards) under the block's own
  /// signer set, while the chain checks run against the delivered
  /// height/prev-hash exactly as for a global decision.
  ApplyResult apply_sequenced(const ledger::Block& block,
                              std::span<const crypto::PublicKey> all_server_keys);

  /// 2PC decision handling: append + apply without signature machinery
  /// (kRejected cannot occur — 2PC trusts the coordinator).
  ApplyResult apply_decision_2pc(const commit::CommitDecisionMsg& msg);
  void handle_decision_2pc(const commit::CommitDecisionMsg& msg);

  // --- Crash durability (ledger/round_log.hpp) -------------------------------

  ledger::RoundLog& round_log() { return *round_log_; }

  /// Vote-once across restarts: returns the durably recorded vote bytes for
  /// (epoch, base) if one exists, otherwise records `computed` under it and
  /// returns it. The caller sends exactly the returned bytes, so a server
  /// can never emit two different votes for one (round, speculated base) —
  /// even when the second emission happens after a crash and restore. A
  /// re-vote on a *changed* base is a new logical vote and gets a new
  /// record; `base` is 0 for votes on fully-applied state (every vote of
  /// the non-speculative protocol).
  Bytes vote_once(std::uint64_t epoch, std::uint64_t base, const std::string& msg_type,
                  Bytes computed);
  Bytes vote_once(std::uint64_t epoch, const std::string& msg_type, Bytes computed) {
    return vote_once(epoch, 0, msg_type, std::move(computed));
  }

  /// The most recently recorded vote for `epoch` (any base), if any.
  const Bytes* logged_vote(std::uint64_t epoch) const;

  /// The recorded vote for exactly (epoch, base), if any.
  const Bytes* logged_vote(std::uint64_t epoch, std::uint64_t base) const;

  /// Respond-once across restarts: the deterministic CoSi nonce of round
  /// `nonce_round` must never sign two distinct challenges (the algebra
  /// would leak the key). Records `challenge_bytes` durably (write-ahead,
  /// like votes) on first call and returns true; returns true again for the
  /// identical challenge (deterministic restarts re-ask it) and false for a
  /// different one — the caller must refuse to respond.
  bool respond_once(std::uint64_t nonce_round, const Bytes& challenge_bytes);

  /// Durably records a decision the server has appended and applied; replay
  /// of these records is what restore() rebuilds the ledger and shard from.
  void record_decision(std::uint64_t epoch, const std::string& msg_type,
                       const ledger::Block& block);

  /// Rebuilds ledger, shard, and the vote map from the durable round log.
  /// Returns false — leaving the server empty — if the log fails its
  /// chained integrity check (a tampered log must refuse to restore: its
  /// recorded votes can no longer be trusted not to equivocate).
  bool restore();

  // --- Audit interface -------------------------------------------------------

  /// Produces (value, VO) for `item` at version `ts` (multi-versioned) or
  /// for the current state (single-versioned; `ts` ignored). The proof is
  /// built from the server's *actual* datastore: a corrupted store yields a
  /// proof that cannot authenticate against the co-signed root (Lemma 2).
  AuditItemProof audit_item(ItemId item, const Timestamp& ts) const;

  /// Batched variant: one version-tree reconstruction serves all proofs —
  /// how a real audit RPC would answer "prove these k items at version ts".
  std::vector<AuditItemProof> audit_items(std::span<const ItemId> items,
                                          const Timestamp& ts) const;

  /// The server's log as handed to the auditor. A log-layer-faulty server
  /// hands over its (tampered) log verbatim — the audit catches it.
  const std::vector<ledger::Block>& audit_log() const { return log_.blocks(); }

  // --- Client-message log (§3.2) ---------------------------------------------

  void record_client_message(Envelope env) { client_messages_.push_back(std::move(env)); }
  const std::vector<Envelope>& client_message_log() const { return client_messages_; }

  /// Cumulative wall time spent in Merkle-root computation on this server
  /// (vote-phase root_after + commit-phase leaf updates) — the "MHT update
  /// time" series of Figure 14.
  double mht_time_us() const { return mht_time_us_; }
  void add_mht_time_us(double us) { mht_time_us_ += us; }
  void reset_mht_time() { mht_time_us_ = 0; }

 private:
  void apply_block(const ledger::Block& block);
  /// Shared append+apply step of decision handling and restore replay.
  void ingest_block(const ledger::Block& block);

  ServerId id_;
  crypto::KeyPair keypair_;
  store::Shard shard_;
  store::WriteBuffer write_buffer_;
  ledger::TamperProofLog log_;
  commit::TfCommitCohort tf_cohort_;
  commit::TwoPhaseCommitCohort tpc_cohort_;
  FaultConfig faults_;
  std::vector<Envelope> client_messages_;
  double mht_time_us_{0};

  std::unique_ptr<ledger::RoundLog> owned_round_log_;  ///< when not given one
  ledger::RoundLog* round_log_;
  /// Durable votes, replayed: (epoch, speculated-base key) -> vote bytes.
  std::map<std::pair<std::uint64_t, std::uint64_t>, Bytes> votes_by_epoch_base_;
  /// Most recently recorded base per epoch (what a redelivered opening or a
  /// termination query answers with).
  std::map<std::uint64_t, std::uint64_t> latest_vote_base_;
  /// Durable respond-once state: nonce round -> the challenge answered.
  std::map<std::uint64_t, Bytes> responded_by_round_;
};

}  // namespace fides
