#include "fides/client.hpp"

#include "fides/cluster.hpp"

namespace fides {

Client::Client(ClientId id, Cluster& cluster)
    : id_(id),
      cluster_(&cluster),
      keypair_(crypto::KeyPair::deterministic(0xC11E'0000ULL + id.value)),
      oracle_(id) {}

ClientTxn Client::begin() {
  ClientTxn txn;
  txn.id_ = TxnId{id_.value, next_seq_++};
  return txn;
}

Bytes Client::read(ClientTxn& txn, ItemId item) {
  if (txn.touched_.empty()) {
    // First access: fan out Begin Transaction (step 1). With lazy fan-out we
    // send one Begin per first touch of a server — equivalent coverage.
  }
  txn.touched_.push_back(item);
  const store::ReadResult r = cluster_->client_read(*this, txn.id_, item);
  oracle_.observe(r.rts);
  oracle_.observe(r.wts);
  txn.builder_.record_read(item, r.value, r.rts, r.wts);
  return r.value;
}

void Client::write(ClientTxn& txn, ItemId item, Bytes value) {
  txn.touched_.push_back(item);
  const WriteAck ack = cluster_->client_write(*this, txn.id_, item, value);
  oracle_.observe(ack.rts);
  oracle_.observe(ack.wts);
  txn.builder_.record_write(item, std::move(value), ack.old_value, ack.rts, ack.wts);
}

commit::SignedEndTxn Client::end(ClientTxn&& txn) {
  commit::SignedEndTxn signed_req;
  signed_req.client = id_;
  signed_req.request.txn.id = txn.id_;
  signed_req.request.txn.commit_ts = oracle_.next();
  signed_req.request.txn.rw = std::move(txn.builder_).build();
  signed_req.signature = keypair_.sign(signed_req.request.serialize());
  return signed_req;
}

bool Client::accept_decision(const ledger::Block& block,
                             std::span<const crypto::PublicKey> server_keys) const {
  return block.cosign &&
         crypto::cosi_verify(block.signing_bytes(), *block.cosign, server_keys);
}

}  // namespace fides
