// Transactional-YCSB-like workload (§6).
//
// "Each transaction consisted of 5 operations on different data items thus
// generating a multi-record workload. The data items were picked at random
// from a pool of all the data partitions combined, resulting in distributed
// transactions." Operations are read-modify-writes; item choice is uniform
// by default with an optional zipfian skew.
#pragma once

#include <unordered_set>

#include "common/rng.hpp"
#include "fides/client.hpp"
#include "fides/cluster.hpp"

namespace fides::workload {

enum class Distribution : std::uint8_t { kUniform, kZipfian, kHotspot };

struct WorkloadConfig {
  std::uint32_t ops_per_txn{5};
  Distribution distribution{Distribution::kUniform};
  double zipf_theta{0.99};
  /// kHotspot: fraction of the keyspace forming the hot set (front of the
  /// id range) and the probability an operation targets it. Defaults give
  /// the classic 80/20 skew.
  double hot_set_fraction{0.2};
  double hot_op_fraction{0.8};
  /// Fraction of operations that only read (the rest read-modify-write).
  double read_only_fraction{0.0};
  /// Sample items without replacement within a batch window, so the
  /// transactions of one block are pairwise non-conflicting — the paper's
  /// §6 methodology ("we typically stored 100 non-conflicting transactions
  /// in each block"). Call begin_batch() at each block boundary.
  bool disjoint_batches{true};
};

class YcsbWorkload {
 public:
  YcsbWorkload(WorkloadConfig config, std::uint64_t total_items, std::uint64_t seed);

  /// Picks ops_per_txn distinct item ids (also disjoint from every other
  /// transaction generated since the last begin_batch(), when
  /// disjoint_batches is set).
  std::vector<ItemId> pick_items();

  /// Marks a block boundary for disjoint-batch sampling.
  void begin_batch() { batch_used_.clear(); }

  /// Executes one transaction through the client data path (begin, reads,
  /// buffered writes) and returns the signed end-transaction request.
  commit::SignedEndTxn run_transaction(Client& client);

  /// Monotonic per-workload value generator (so every write is distinct and
  /// audits can distinguish versions).
  Bytes next_value();

 private:
  WorkloadConfig config_;
  std::uint64_t total_items_;
  Rng rng_;
  Zipf zipf_;
  std::uint64_t value_counter_{0};
  std::unordered_set<ItemId> batch_used_;
};

}  // namespace fides::workload
