// 256-bit unsigned integer with 4x64-bit limbs.
//
// The building block for secp256k1 field and scalar arithmetic. Plain value
// semantics; all operations are branch-light and allocation-free.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace fides::crypto {

struct U256 {
  /// Little-endian limbs: w[0] is the least significant 64 bits.
  std::array<std::uint64_t, 4> w{};

  constexpr U256() = default;
  constexpr explicit U256(std::uint64_t v) : w{v, 0, 0, 0} {}
  static constexpr U256 from_limbs(std::uint64_t w0, std::uint64_t w1, std::uint64_t w2,
                                   std::uint64_t w3) {
    U256 x;
    x.w = {w0, w1, w2, w3};
    return x;
  }

  friend constexpr bool operator==(const U256&, const U256&) = default;

  bool is_zero() const { return (w[0] | w[1] | w[2] | w[3]) == 0; }
  bool bit(int i) const { return (w[i / 64] >> (i % 64)) & 1; }
  /// Index of highest set bit, or -1 if zero.
  int bit_length() const;

  /// Big-endian 32-byte encoding (the canonical wire form for keys/scalars).
  std::array<std::uint8_t, 32> to_bytes_be() const;
  static U256 from_bytes_be(BytesView b);  ///< b.size() must be 32

  std::string hex() const;
  static std::optional<U256> from_hex(std::string_view h);
};

/// a < b as 256-bit unsigned integers.
bool u256_less(const U256& a, const U256& b);

/// dst = a + b; returns carry-out (0/1).
std::uint64_t u256_add(U256& dst, const U256& a, const U256& b);

/// dst = a - b; returns borrow-out (0/1).
std::uint64_t u256_sub(U256& dst, const U256& a, const U256& b);

/// 512-bit product a*b, little-endian limbs.
std::array<std::uint64_t, 8> u256_mul_wide(const U256& a, const U256& b);

/// a mod m computed by binary long division. Slow path: used only at
/// context setup and for reducing hash outputs; hot-path multiplication uses
/// Montgomery form (field.hpp).
U256 u256_mod(const U256& a, const U256& m);

/// (hi:lo) mod m where hi:lo is a 512-bit value.
U256 u512_mod(const std::array<std::uint64_t, 8>& v, const U256& m);

}  // namespace fides::crypto
