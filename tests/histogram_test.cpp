// LogHistogram: bucket boundaries, percentile determinism/monotonicity, and
// exact merge associativity — the properties the bench JSON artifacts'
// exact-comparison gate relies on.
#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.hpp"

namespace fides::common {
namespace {

TEST(LogHistogram, BucketBoundariesBracketTheValue) {
  // Every recorded value lies in [bucket_lower, bucket_upper) of its bucket
  // (exact sub-bucket edges open a new bucket), and the reported upper bound
  // is within one sub-bucket of relative error above the value.
  for (const double v : {1e-4, 0.03, 0.5, 1.0, 1.5, 7.0, 1000.0, 3.7e6}) {
    const std::size_t idx = LogHistogram::bucket_index(v);
    EXPECT_GE(v, LogHistogram::bucket_lower(idx)) << v;
    EXPECT_LT(v, LogHistogram::bucket_upper(idx)) << v;
    const double rel =
        (LogHistogram::bucket_upper(idx) - v) / v;
    EXPECT_LE(rel, 1.0 / LogHistogram::kSubBuckets + 1e-12) << v;
  }
}

TEST(LogHistogram, BucketIndexIsMonotone) {
  double prev_v = 0.0;
  std::size_t prev_idx = 0;
  Rng rng(11);
  std::vector<double> vs;
  for (int i = 0; i < 2000; ++i) {
    vs.push_back(rng.uniform01() * 1e5);
  }
  std::sort(vs.begin(), vs.end());
  for (const double v : vs) {
    const std::size_t idx = LogHistogram::bucket_index(v);
    EXPECT_GE(idx, prev_idx) << "index decreased between " << prev_v << " and " << v;
    prev_idx = idx;
    prev_v = v;
  }
}

TEST(LogHistogram, ZeroNegativeAndHugeValuesClampSafely) {
  EXPECT_EQ(LogHistogram::bucket_index(0.0), 0u);
  EXPECT_EQ(LogHistogram::bucket_index(-5.0), 0u);
  EXPECT_LT(LogHistogram::bucket_index(1e30), LogHistogram::num_buckets());

  LogHistogram h;
  h.record(0.0);
  h.record(-1.0);
  h.record(1e30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), 1e30);
}

TEST(LogHistogram, EmptyHistogram) {
  const LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50.0), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(LogHistogram, PercentilesAreMonotoneInP) {
  LogHistogram h;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    h.record(0.1 + rng.uniform01() * 250.0);
  }
  double prev = 0.0;
  for (double p = 0.0; p <= 100.0; p += 0.5) {
    const double v = h.percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
  EXPECT_EQ(h.percentile(100.0), h.max());
  EXPECT_LE(h.percentile(0.0), h.percentile(100.0));
}

TEST(LogHistogram, PercentileBoundsTheTrueRankValue) {
  // With the exact sorted samples in hand, percentile(p) must be >= the true
  // rank value and within one bucket's relative error above it.
  LogHistogram h;
  Rng rng(23);
  std::vector<double> vs;
  for (int i = 0; i < 2000; ++i) {
    vs.push_back(0.5 + rng.uniform01() * 99.5);
  }
  for (const double v : vs) h.record(v);
  std::sort(vs.begin(), vs.end());
  for (const double p : {50.0, 90.0, 99.0, 99.9}) {
    std::size_t rank = static_cast<std::size_t>(p / 100.0 * vs.size());
    if (rank >= vs.size()) rank = vs.size() - 1;
    const double truth = vs[rank];
    const double est = h.percentile(p);
    EXPECT_GE(est, truth * (1.0 - 1.0 / LogHistogram::kSubBuckets)) << p;
    EXPECT_LE(est, truth * (1.0 + 2.0 / LogHistogram::kSubBuckets)) << p;
  }
}

TEST(LogHistogram, MergeIsExactAndAssociative) {
  Rng rng(42);
  LogHistogram a, b, c, all;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01() * 40.0;
    if (i % 3 == 0) a.record(v);
    if (i % 3 == 1) b.record(v);
    if (i % 3 == 2) c.record(v);
    all.record(v);
  }

  LogHistogram ab_c = a;   // (a + b) + c
  ab_c.merge(b);
  ab_c.merge(c);
  LogHistogram bc = b;     // a + (b + c)
  bc.merge(c);
  LogHistogram a_bc = a;
  a_bc.merge(bc);

  EXPECT_TRUE(ab_c == a_bc);
  EXPECT_TRUE(ab_c == all);
  EXPECT_EQ(ab_c.count(), all.count());
  EXPECT_EQ(ab_c.max(), all.max());
  EXPECT_EQ(ab_c.min(), all.min());
  // Identical multisets => byte-identical percentiles, any merge order.
  for (const double p : {50.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(ab_c.percentile(p), a_bc.percentile(p));
    EXPECT_EQ(ab_c.percentile(p), all.percentile(p));
  }
}

TEST(LogHistogram, NonFiniteSamplesAreRejectedNotRecorded) {
  // Regression: NaN used to fold into sum_/min_/max_, poisoning mean() and
  // every subsequent min/max comparison (NaN compares false, so min/max
  // stuck on the NaN). Non-finite samples must leave the distribution
  // untouched and be tallied separately.
  LogHistogram h;
  h.record(2.0);
  h.record(std::numeric_limits<double>::quiet_NaN());
  h.record(std::numeric_limits<double>::infinity());
  h.record(-std::numeric_limits<double>::infinity());
  h.record(8.0);

  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.rejected(), 3u);
  EXPECT_EQ(h.min(), 2.0);
  EXPECT_EQ(h.max(), 8.0);
  EXPECT_EQ(h.sum(), 10.0);
  EXPECT_EQ(h.mean(), 5.0);
  EXPECT_FALSE(std::isnan(h.percentile(50.0)));

  // A histogram fed the same finite samples (and no garbage) is equal: the
  // rejection tally is bookkeeping, not part of the distribution.
  LogHistogram clean;
  clean.record(2.0);
  clean.record(8.0);
  EXPECT_TRUE(h == clean);

  // merge() folds the tally so a per-seed reject count survives aggregation.
  LogHistogram merged;
  merged.merge(h);
  merged.merge(clean);
  EXPECT_EQ(merged.rejected(), 3u);
  EXPECT_EQ(merged.count(), 4u);
}

TEST(LogHistogram, MergeWithEmptyIsIdentity) {
  LogHistogram a, empty;
  a.record(3.0);
  a.record(9.0);
  LogHistogram merged = a;
  merged.merge(empty);
  EXPECT_TRUE(merged == a);
  LogHistogram other = empty;
  other.merge(a);
  EXPECT_TRUE(other == a);
}

}  // namespace
}  // namespace fides::common
